//! Canonical Huffman coding over `u32` symbol alphabets.
//!
//! This mirrors the role of SZ's "customized Huffman" stage: quantization
//! codes (bin indices) are entropy-coded with a code table stored in the
//! stream header. Codes are canonical, so the header only carries
//! `(symbol, code length)` pairs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;

use crate::bitio::{BitReader, BitWriter};
use crate::budget::DecodeBudget;
use crate::varint::{read_uvarint, write_uvarint};
use crate::CodecError;

/// Maximum code length we allow; keeps decode state in a `u64` with room to
/// spare. Reached only by adversarially skewed alphabets, which we flatten.
const MAX_CODE_LEN: u32 = 48;

/// Computes Huffman code lengths for the given `(symbol, frequency)` pairs.
/// Returns lengths aligned with the input order.
fn code_lengths(freqs: &[(u32, u64)]) -> Vec<u32> {
    assert!(!freqs.is_empty());
    if freqs.len() == 1 {
        // A single-symbol alphabet needs one bit so the bitstream has
        // measurable length per symbol (and canonical decode stays simple).
        return vec![1];
    }
    // Node arena: leaves first, then internal nodes.
    let n = freqs.len();
    let mut parent = vec![usize::MAX; 2 * n - 1];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = freqs
        .iter()
        .enumerate()
        .map(|(i, &(_, f))| Reverse((f.max(1), i)))
        .collect();
    let mut next = n;
    while heap.len() > 1 {
        let Reverse((fa, a)) = heap.pop().expect("len > 1");
        let Reverse((fb, b)) = heap.pop().expect("len > 1");
        parent[a] = next;
        parent[b] = next;
        heap.push(Reverse((fa + fb, next)));
        next += 1;
    }
    // Depth of each leaf = number of parent hops to the root.
    (0..n)
        .map(|leaf| {
            let mut d = 0;
            let mut cur = leaf;
            while parent[cur] != usize::MAX {
                cur = parent[cur];
                d += 1;
            }
            d
        })
        .collect()
}

/// Assigns canonical codes given code lengths. Returns `(code, len)` per
/// symbol, aligned with `entries` (which must be sorted by `(len, symbol)`).
fn canonical_codes(sorted_lens: &[u32]) -> Vec<u64> {
    let mut codes = Vec::with_capacity(sorted_lens.len());
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for &len in sorted_lens {
        code <<= len - prev_len;
        codes.push(code);
        code += 1;
        prev_len = len;
    }
    codes
}

/// Encodes a symbol stream. Output layout:
/// `uvarint n_symbols_in_stream`, `uvarint n_distinct`,
/// `(uvarint symbol, uvarint len)*`, padded bitstream.
pub fn huffman_encode(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    huffman_encode_into(symbols, &mut out);
    out
}

/// Appends the encoding of `symbols` to `out` (same layout as
/// [`huffman_encode`]); lets callers assemble streams in rented scratch
/// buffers instead of chaining fresh allocations.
pub fn huffman_encode_into(symbols: &[u32], out: &mut Vec<u8>) {
    write_uvarint(out, symbols.len() as u64);
    if symbols.is_empty() {
        return;
    }

    // Frequency table (deterministic order: by symbol).
    let mut freq_map: HashMap<u32, u64> = HashMap::new();
    for &s in symbols {
        *freq_map.entry(s).or_insert(0) += 1;
    }
    let mut freqs: Vec<(u32, u64)> = freq_map.into_iter().collect();
    freqs.sort_unstable_by_key(|&(s, _)| s);

    // Code lengths; flatten frequencies if the tree got pathologically deep.
    let mut lens = code_lengths(&freqs);
    while lens.iter().copied().max().unwrap_or(0) > MAX_CODE_LEN {
        for f in &mut freqs {
            f.1 = 1 + f.1 / 2;
        }
        lens = code_lengths(&freqs);
    }

    // Canonical order: (len, symbol).
    let mut entries: Vec<(u32, u32)> = freqs
        .iter()
        .zip(&lens)
        .map(|(&(sym, _), &len)| (len, sym))
        .collect();
    entries.sort_unstable();
    let sorted_lens: Vec<u32> = entries.iter().map(|&(l, _)| l).collect();
    let codes = canonical_codes(&sorted_lens);

    // Lookup: symbol -> (code, len).
    let table: HashMap<u32, (u64, u32)> = entries
        .iter()
        .zip(&codes)
        .map(|(&(len, sym), &code)| (sym, (code, len)))
        .collect();

    // Header.
    write_uvarint(out, entries.len() as u64);
    for &(len, sym) in &entries {
        write_uvarint(out, sym as u64);
        write_uvarint(out, len as u64);
    }

    // Body: the bitstream accumulates in a rented scratch buffer (it can't
    // go straight into `out` — the writer needs byte-boundary padding that
    // only `finish` applies).
    let mut bits = BitWriter::with_buffer(amrviz_par::scratch::take_bytes());
    for &s in symbols {
        let (code, len) = table[&s];
        bits.write_bits(code, len);
    }
    let body = bits.finish();
    out.extend_from_slice(&body);
    amrviz_par::scratch::give_bytes(body);
}

/// Decodes a stream produced by [`huffman_encode`] under the default
/// (permissive) [`DecodeBudget`].
pub fn huffman_decode(bytes: &[u8]) -> Result<Vec<u32>, CodecError> {
    huffman_decode_budgeted(bytes, &DecodeBudget::default())
}

/// Decodes a stream produced by [`huffman_encode`], validating every
/// declared count against `budget` and the remaining input before any
/// allocation. Corrupt tables (non-canonical order, over-full Kraft sums,
/// out-of-range indices) return [`CodecError::Corrupt`]; they never panic
/// or mis-index.
pub fn huffman_decode_budgeted(
    bytes: &[u8],
    budget: &DecodeBudget,
) -> Result<Vec<u32>, CodecError> {
    let mut out = Vec::new();
    huffman_decode_into(bytes, budget, &mut out)?;
    Ok(out)
}

/// Decodes into `out` (cleared first, capacity reused) with the same
/// validation as [`huffman_decode_budgeted`]. On error `out` may hold a
/// partial prefix; its contents are unspecified.
pub fn huffman_decode_into(
    bytes: &[u8],
    budget: &DecodeBudget,
    out: &mut Vec<u32>,
) -> Result<(), CodecError> {
    out.clear();
    let mut pos = 0usize;
    let total = budget.check_values(read_uvarint(bytes, &mut pos)? as usize)?;
    if total == 0 {
        return Ok(());
    }
    let distinct = read_uvarint(bytes, &mut pos)? as usize;
    if distinct == 0 {
        return Err(CodecError::Corrupt("no code table for nonempty stream"));
    }
    // A table can't have more distinct symbols than the stream has symbols,
    // and each header entry costs at least two bytes — both bounds hold
    // before we reserve a single entry.
    if distinct > total || distinct > (bytes.len() - pos) / 2 {
        return Err(CodecError::Corrupt("code table larger than stream"));
    }
    let mut entries = Vec::with_capacity(distinct);
    for _ in 0..distinct {
        let sym = read_uvarint(bytes, &mut pos)? as u32;
        let len = read_uvarint(bytes, &mut pos)? as u32;
        if len == 0 || len > MAX_CODE_LEN {
            return Err(CodecError::Corrupt("bad code length"));
        }
        entries.push((len, sym));
    }
    // The header must already be in canonical (len, symbol) order.
    if entries.windows(2).any(|w| w[0] > w[1]) {
        return Err(CodecError::Corrupt("code table not canonical"));
    }

    // Every symbol takes at least one bit, so `total` must fit in the
    // remaining bitstream — checked before the output buffer is reserved.
    if total > (bytes.len() - pos).saturating_mul(8) {
        return Err(CodecError::Truncated);
    }

    // Canonical decode tables indexed by length.
    let max_len = entries.last().expect("distinct >= 1").0;
    let mut count = vec![0u64; max_len as usize + 1];
    for &(len, _) in &entries {
        count[len as usize] += 1;
    }
    let mut first_code = vec![0u64; max_len as usize + 2];
    let mut first_index = vec![0u64; max_len as usize + 2];
    let mut code = 0u64;
    let mut idx = 0u64;
    for len in 1..=max_len as usize {
        first_code[len] = code;
        first_index[len] = idx;
        let next = code
            .checked_add(count[len])
            .ok_or(CodecError::Corrupt("code table overflow"))?;
        // Kraft validity: codes of length `len` must fit in `len` bits,
        // which also guarantees every decode-loop table index stays in
        // range.
        if next > 1u64 << len {
            return Err(CodecError::Corrupt("code table over-full"));
        }
        code = next << 1;
        idx += count[len];
    }
    let syms: Vec<u32> = entries.iter().map(|&(_, s)| s).collect();

    let mut reader = BitReader::new(&bytes[pos..]);
    out.reserve(total);
    for i in 0..total {
        budget.check_deadline_every(i)?;
        let mut code = 0u64;
        let mut len = 0u32;
        loop {
            code = (code << 1) | reader.read_bit()? as u64;
            len += 1;
            if len > max_len {
                return Err(CodecError::Corrupt("code exceeds max length"));
            }
            let l = len as usize;
            if count[l] > 0 && code >= first_code[l] && code - first_code[l] < count[l] {
                let i = first_index[l] + (code - first_code[l]);
                let sym = *syms
                    .get(i as usize)
                    .ok_or(CodecError::Corrupt("code index outside table"))?;
                out.push(sym);
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_rng::check;

    #[test]
    fn empty_stream() {
        let enc = huffman_encode(&[]);
        assert_eq!(huffman_decode(&enc).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn single_symbol_repeated() {
        let data = vec![42u32; 1000];
        let enc = huffman_encode(&data);
        // 1 bit/symbol + header ≈ 130 bytes.
        assert!(enc.len() < 140, "got {} bytes", enc.len());
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% zeros, a few others: entropy ≈ 0.6 bits/symbol.
        let mut data = Vec::new();
        for i in 0..10_000u32 {
            data.push(if i % 10 == 0 { i % 7 + 1 } else { 0 });
        }
        let enc = huffman_encode(&data);
        assert!(
            enc.len() < data.len(), // « 4 bytes/symbol
            "no compression: {} bytes for {} symbols",
            enc.len(),
            data.len()
        );
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }

    #[test]
    fn uniform_distribution_roundtrips() {
        let data: Vec<u32> = (0..4096).map(|i| i % 256).collect();
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
        // 256 equiprobable symbols: ~8 bits each.
        assert!(enc.len() < 4096 * 2);
    }

    #[test]
    fn large_symbol_values() {
        let data = vec![u32::MAX, 0, u32::MAX, 12345678, u32::MAX];
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_stream_errors() {
        let data: Vec<u32> = (0..100).collect();
        let enc = huffman_encode(&data);
        for cut in [1, enc.len() / 2, enc.len() - 1] {
            assert!(
                huffman_decode(&enc[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn fibonacci_frequencies_stay_within_depth_cap() {
        // Fibonacci frequencies maximize Huffman depth; with ~60 symbols the
        // unconstrained depth would approach 60. The encoder must flatten.
        let mut data = Vec::new();
        let (mut a, mut b) = (1u64, 1u64);
        for sym in 0..55u32 {
            for _ in 0..a.min(100_000) {
                data.push(sym);
            }
            let c = a + b;
            a = b;
            b = c;
        }
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }

    #[test]
    fn overfull_code_table_rejected() {
        // Three codes of length 1 violate Kraft (only two 1-bit codes
        // exist); must be Corrupt, not a mis-indexed decode.
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 5); // total symbols
        write_uvarint(&mut buf, 3); // distinct
        for sym in 0..3u64 {
            write_uvarint(&mut buf, sym);
            write_uvarint(&mut buf, 1); // len 1
        }
        buf.push(0x00); // bitstream
        assert_eq!(
            huffman_decode(&buf),
            Err(CodecError::Corrupt("code table over-full"))
        );
    }

    #[test]
    fn table_larger_than_stream_rejected() {
        // distinct > total is structurally impossible for a real encode.
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1); // total
        write_uvarint(&mut buf, 9); // distinct
        for sym in 0..9u64 {
            write_uvarint(&mut buf, sym);
            write_uvarint(&mut buf, 4);
        }
        buf.push(0x00);
        assert!(matches!(huffman_decode(&buf), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn declared_total_beyond_bitstream_is_eof_before_allocation() {
        // Claims 2^40 symbols with a near-empty body: must fail before
        // reserving the output buffer.
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1u64 << 40);
        write_uvarint(&mut buf, 1);
        write_uvarint(&mut buf, 7); // sym
        write_uvarint(&mut buf, 1); // len
        buf.push(0x00);
        assert!(huffman_decode(&buf).is_err());
    }

    #[test]
    fn budget_caps_declared_total() {
        let data: Vec<u32> = (0..100).collect();
        let enc = huffman_encode(&data);
        let tiny = DecodeBudget {
            max_values: 10,
            ..DecodeBudget::strict()
        };
        assert!(matches!(
            huffman_decode_budgeted(&enc, &tiny),
            Err(CodecError::BudgetExceeded(_))
        ));
        assert_eq!(
            huffman_decode_budgeted(&enc, &DecodeBudget::strict()).unwrap(),
            data
        );
    }

    #[test]
    fn roundtrip_arbitrary() {
        check(0x4F1, 64, |rng| {
            let data: Vec<u32> = (0..rng.range_usize(0, 2999))
                .map(|_| rng.below(5000) as u32)
                .collect();
            let enc = huffman_encode(&data);
            assert_eq!(huffman_decode(&enc).unwrap(), data);
        });
    }

    #[test]
    fn roundtrip_small_alphabet() {
        check(0x4F2, 64, |rng| {
            let data: Vec<u32> = (0..rng.range_usize(0, 4999))
                .map(|_| rng.below(4) as u32)
                .collect();
            let enc = huffman_encode(&data);
            assert_eq!(huffman_decode(&enc).unwrap(), data);
        });
    }
}
