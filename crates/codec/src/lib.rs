//! Entropy-coding substrate for the SZ-style compressors.
//!
//! The real SZ framework encodes quantization codes with a customized
//! Huffman coder and then runs a general-purpose lossless compressor (zstd)
//! over the result. This crate provides from-scratch equivalents:
//!
//! * [`bitio`] — MSB-first bit-level reader/writer;
//! * [`huffman`] — canonical Huffman coding over `u32` symbol alphabets;
//! * [`rle`] — zero-run-length coding (quantization codes are dominated by
//!   the zero-error bin on smooth data);
//! * [`lzss`] — an LZ77/LZSS byte compressor with hash-chain matching,
//!   standing in for zstd as the final lossless stage;
//! * [`varint`] — LEB128 varints and zigzag mapping for signed values.
//!
//! Everything round-trips losslessly; property tests in each module assert
//! that for arbitrary inputs.
//!
//! Decoders are hardened against untrusted input: every declared length is
//! validated against a [`DecodeBudget`] (and the remaining input, where the
//! format allows) *before* any allocation, so a corrupted length prefix
//! yields a [`CodecError`] instead of a panic or an abort-on-alloc. The
//! [`checksum`] module provides the FNV-1a hash the v2 wire format uses for
//! per-blob integrity.
//!
//! ```
//! use amrviz_codec::{huffman_encode, huffman_decode, lzss_compress, lzss_decompress};
//!
//! let symbols: Vec<u32> = (0..1000).map(|i| i % 7).collect();
//! let packed = lzss_compress(&huffman_encode(&symbols));
//! assert!(packed.len() < symbols.len()); // ≪ 4 bytes/symbol
//! let back = huffman_decode(&lzss_decompress(&packed).unwrap()).unwrap();
//! assert_eq!(back, symbols);
//! ```

pub mod bitio;
pub mod budget;
pub mod checksum;
pub mod huffman;
pub mod lzss;
pub mod rle;
pub mod varint;

pub use bitio::{BitReader, BitWriter};
pub use budget::DecodeBudget;
pub use checksum::fnv1a_64;
pub use huffman::{
    huffman_decode, huffman_decode_budgeted, huffman_decode_into, huffman_encode,
    huffman_encode_into,
};
pub use lzss::{
    lzss_compress, lzss_compress_into, lzss_decompress, lzss_decompress_budgeted,
    lzss_decompress_into,
};
pub use rle::{rle_decode_zeros, rle_decode_zeros_budgeted, rle_encode_zeros};
pub use varint::{read_uvarint, write_uvarint, zigzag_decode, zigzag_encode};

/// Errors returned by decoders when the input is malformed or truncated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of input bits/bytes.
    UnexpectedEof,
    /// Structurally invalid stream (bad header, impossible code, …).
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of stream"),
            CodecError::Malformed(what) => write!(f, "malformed stream: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}
