//! Entropy-coding substrate for the SZ-style compressors.
//!
//! The real SZ framework encodes quantization codes with a customized
//! Huffman coder and then runs a general-purpose lossless compressor (zstd)
//! over the result. This crate provides from-scratch equivalents:
//!
//! * [`bitio`] — MSB-first bit-level reader/writer;
//! * [`huffman`] — canonical Huffman coding over `u32` symbol alphabets;
//! * [`rle`] — zero-run-length coding (quantization codes are dominated by
//!   the zero-error bin on smooth data);
//! * [`lzss`] — an LZ77/LZSS byte compressor with hash-chain matching,
//!   standing in for zstd as the final lossless stage;
//! * [`varint`] — LEB128 varints and zigzag mapping for signed values.
//!
//! Everything round-trips losslessly; property tests in each module assert
//! that for arbitrary inputs.
//!
//! Decoders are hardened against untrusted input: every declared length is
//! validated against a [`DecodeBudget`] (and the remaining input, where the
//! format allows) *before* any allocation, so a corrupted length prefix
//! yields a [`CodecError`] instead of a panic or an abort-on-alloc. The
//! [`checksum`] module provides the FNV-1a hash the v2 wire format uses for
//! per-blob integrity.
//!
//! ```
//! use amrviz_codec::{huffman_encode, huffman_decode, lzss_compress, lzss_decompress};
//!
//! let symbols: Vec<u32> = (0..1000).map(|i| i % 7).collect();
//! let packed = lzss_compress(&huffman_encode(&symbols));
//! assert!(packed.len() < symbols.len()); // ≪ 4 bytes/symbol
//! let back = huffman_decode(&lzss_decompress(&packed).unwrap()).unwrap();
//! assert_eq!(back, symbols);
//! ```

pub mod bitio;
pub mod budget;
pub mod checksum;
pub mod huffman;
pub mod lzss;
pub mod rle;
pub mod varint;

pub use bitio::{BitReader, BitWriter};
pub use budget::DecodeBudget;
pub use checksum::fnv1a_64;
pub use huffman::{
    huffman_decode, huffman_decode_budgeted, huffman_decode_into, huffman_encode,
    huffman_encode_into,
};
pub use lzss::{
    lzss_compress, lzss_compress_into, lzss_decompress, lzss_decompress_budgeted,
    lzss_decompress_into,
};
pub use rle::{rle_decode_zeros, rle_decode_zeros_budgeted, rle_encode_zeros};
pub use varint::{read_uvarint, write_uvarint, zigzag_decode, zigzag_encode};

/// Errors returned by decoders when the input is malformed, truncated, or
/// over budget.
///
/// The three variants are a *taxonomy*, not just messages: callers (the
/// torture harness, `amrviz serve`) match on the variant to decide whether a
/// failure is retryable. A [`CodecError::BudgetExceeded`] from a deadline is
/// transient — the same request may succeed with a larger budget — while
/// [`CodecError::Corrupt`] and [`CodecError::Truncated`] describe the bytes
/// themselves and never go away on retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of input bits/bytes: the stream ends before the structure it
    /// declared (truncation, short read).
    Truncated,
    /// Structurally invalid stream (bad header, impossible code, checksum
    /// mismatch, …): the bytes are wrong, not merely missing.
    Corrupt(&'static str),
    /// A [`DecodeBudget`] cap tripped: a declared size exceeded the limit,
    /// or the cooperative deadline passed mid-decode. The input may be
    /// fine — the *budget* said stop.
    BudgetExceeded(&'static str),
}

impl CodecError {
    /// Message used by deadline breaches; [`CodecError::is_deadline`] keys
    /// off it so serve can tell "too slow" from "stream declared too much".
    pub const DEADLINE_MSG: &'static str = "decode deadline exceeded";

    /// The deadline-breach error.
    pub const fn deadline() -> Self {
        CodecError::BudgetExceeded(Self::DEADLINE_MSG)
    }

    /// True when this is the cooperative-deadline breach (retry with a
    /// larger budget may succeed; the input itself is not implicated).
    pub fn is_deadline(&self) -> bool {
        matches!(self, CodecError::BudgetExceeded(m) if *m == Self::DEADLINE_MSG)
    }

    /// Short stable class name for logs/journal: `corrupt`, `truncated`,
    /// or `budget`.
    pub fn class(&self) -> &'static str {
        match self {
            CodecError::Truncated => "truncated",
            CodecError::Corrupt(_) => "corrupt",
            CodecError::BudgetExceeded(_) => "budget",
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated stream: unexpected end of input"),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CodecError::BudgetExceeded(what) => write!(f, "decode budget exceeded: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}
