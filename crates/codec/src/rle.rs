//! Zero-run-length coding for quantization code streams.
//!
//! SZ quantization codes are dominated by the "zero prediction error" bin on
//! smooth data; collapsing zero runs before Huffman coding shortens the
//! stream and sharpens the code distribution.
//!
//! Encoding: a stream of `u32` is mapped to a stream of `u64` tokens where
//! value `v != 0` becomes `v` and a run of `n` zeros becomes the pair
//! `0, n`. (Tokens are `u64` so run lengths are unbounded.)

use crate::budget::DecodeBudget;
use crate::varint::{read_uvarint, write_uvarint};
use crate::CodecError;

/// Encodes zero runs into a byte buffer of varint tokens.
pub fn rle_encode_zeros(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    write_uvarint(&mut out, values.len() as u64);
    let mut i = 0;
    while i < values.len() {
        if values[i] == 0 {
            let start = i;
            while i < values.len() && values[i] == 0 {
                i += 1;
            }
            write_uvarint(&mut out, 0);
            write_uvarint(&mut out, (i - start) as u64);
        } else {
            write_uvarint(&mut out, values[i] as u64);
            i += 1;
        }
    }
    out
}

/// Decodes a buffer produced by [`rle_encode_zeros`] under the default
/// (permissive) [`DecodeBudget`].
pub fn rle_decode_zeros(bytes: &[u8]) -> Result<Vec<u32>, CodecError> {
    rle_decode_zeros_budgeted(bytes, &DecodeBudget::default())
}

/// Decodes a buffer produced by [`rle_encode_zeros`], validating the
/// declared value count against `budget` before allocating the output.
/// (A zero-run pair can legitimately expand a handful of bytes into
/// billions of values, so the budget — not the input length — is the
/// binding cap here.)
pub fn rle_decode_zeros_budgeted(
    bytes: &[u8],
    budget: &DecodeBudget,
) -> Result<Vec<u32>, CodecError> {
    let mut pos = 0;
    let total = budget.check_values(read_uvarint(bytes, &mut pos)? as usize)?;
    let mut out = Vec::with_capacity(total);
    let mut tokens = 0usize;
    while out.len() < total {
        budget.check_deadline_every(tokens)?;
        tokens += 1;
        let tok = read_uvarint(bytes, &mut pos)?;
        if tok == 0 {
            let run = read_uvarint(bytes, &mut pos)? as usize;
            if run == 0 || out.len() + run > total {
                return Err(CodecError::Corrupt("bad zero run"));
            }
            out.resize(out.len() + run, 0);
        } else {
            if tok > u32::MAX as u64 {
                return Err(CodecError::Corrupt("token exceeds u32"));
            }
            out.push(tok as u32);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_rng::check;

    #[test]
    fn empty() {
        let enc = rle_encode_zeros(&[]);
        assert_eq!(rle_decode_zeros(&enc).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn long_zero_run_is_tiny() {
        let data = vec![0u32; 1_000_000];
        let enc = rle_encode_zeros(&data);
        assert!(enc.len() < 16, "got {} bytes", enc.len());
        assert_eq!(rle_decode_zeros(&enc).unwrap(), data);
    }

    #[test]
    fn mixed_runs() {
        let data = vec![0, 0, 0, 5, 0, 7, 7, 0, 0, 1];
        let enc = rle_encode_zeros(&data);
        assert_eq!(rle_decode_zeros(&enc).unwrap(), data);
    }

    #[test]
    fn no_zeros_at_all() {
        let data: Vec<u32> = (1..100).collect();
        let enc = rle_encode_zeros(&data);
        assert_eq!(rle_decode_zeros(&enc).unwrap(), data);
    }

    #[test]
    fn truncation_detected() {
        let data = vec![0u32, 1, 0, 0, 2];
        let enc = rle_encode_zeros(&data);
        assert!(rle_decode_zeros(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn budget_caps_declared_count() {
        let data = vec![0u32; 100_000];
        let enc = rle_encode_zeros(&data);
        let tiny = DecodeBudget {
            max_values: 1000,
            ..DecodeBudget::strict()
        };
        assert!(rle_decode_zeros_budgeted(&enc, &tiny).is_err());
        assert_eq!(
            rle_decode_zeros_budgeted(&enc, &DecodeBudget::strict()).unwrap(),
            data
        );
    }

    #[test]
    fn roundtrip() {
        check(0x21E, 256, |rng| {
            let data: Vec<u32> = (0..rng.range_usize(0, 1999))
                .map(|_| rng.below(10) as u32)
                .collect();
            let enc = rle_encode_zeros(&data);
            assert_eq!(rle_decode_zeros(&enc).unwrap(), data);
        });
    }

    #[test]
    fn roundtrip_any_u32() {
        check(0x21F, 256, |rng| {
            let data: Vec<u32> = (0..rng.range_usize(0, 499))
                .map(|_| rng.next_u64() as u32)
                .collect();
            let enc = rle_encode_zeros(&data);
            assert_eq!(rle_decode_zeros(&enc).unwrap(), data);
        });
    }
}
