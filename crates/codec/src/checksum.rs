//! FNV-1a 64-bit checksums for wire-format integrity.
//!
//! FNV-1a is not cryptographic — it guards against bit rot, truncation, and
//! transport corruption, which is exactly the failure model of the v2 wire
//! format. It is dependency-free, stable across platforms, and fast enough
//! to run over every blob on every decode.

/// 64-bit FNV-1a over a byte stream.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        let data = vec![0x5au8; 256];
        let base = fnv1a_64(&data);
        for i in 0..data.len() {
            let mut corrupted = data.clone();
            corrupted[i] ^= 1;
            assert_ne!(fnv1a_64(&corrupted), base, "flip at byte {i} undetected");
        }
    }
}
