//! MSB-first bit-level I/O over byte buffers.

use crate::CodecError;

/// Accumulates bits MSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Current partial byte (bits packed from the MSB down).
    cur: u8,
    /// Number of bits used in `cur` (0..8).
    used: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter::default()
    }

    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            bytes: Vec::with_capacity(bytes),
            cur: 0,
            used: 0,
        }
    }

    /// Builds a writer on top of an existing (cleared) buffer, so scratch
    /// capacity can be recycled across calls. [`BitWriter::finish`] hands
    /// the buffer back.
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        BitWriter {
            bytes: buf,
            cur: 0,
            used: 0,
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if bit {
            self.cur |= 1 << (7 - self.used);
        }
        self.used += 1;
        if self.used == 8 {
            self.bytes.push(self.cur);
            self.cur = 0;
            self.used = 0;
        }
    }

    /// Writes the low `n` bits of `value`, most significant first.
    /// `n` may be 0..=64.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.used as usize
    }

    /// Pads with zero bits to a byte boundary and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.bytes.push(self.cur);
        }
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit position (absolute, from the start).
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Number of bits remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits (0..=64), MSB first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64, CodecError> {
        debug_assert!(n <= 64);
        if self.remaining() < n as usize {
            return Err(CodecError::Truncated);
        }
        let mut v = 0u64;
        for _ in 0..n {
            let byte = self.pos / 8;
            let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1;
            v = (v << 1) | bit as u64;
            self.pos += 1;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_rng::check;

    #[test]
    fn single_bits_roundtrip() {
        let bits = [
            true, false, true, true, false, false, false, true, true, false,
        ];
        let mut w = BitWriter::new();
        for &b in &bits {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 10);
        let buf = w.finish();
        assert_eq!(buf.len(), 2);
        let mut r = BitReader::new(&buf);
        for &b in &bits {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        let buf = w.finish();
        assert_eq!(buf, vec![0b1011_0000]);
    }

    #[test]
    fn eof_detected() {
        let buf = [0xFFu8];
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bit(), Err(CodecError::Truncated));
        assert_eq!(
            BitReader::new(&buf).read_bits(9),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn zero_width_reads_and_writes() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        w.write_bits(1, 1);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert!(r.read_bit().unwrap());
    }

    #[test]
    fn full_width_values() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        w.write_bits(0xDEAD_BEEF, 32);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn bits_roundtrip() {
        check(0xB17, 256, |rng| {
            let values: Vec<(u64, u32)> = (0..rng.range_usize(0, 199))
                .map(|_| (rng.next_u64(), rng.range_i64(0, 64) as u32))
                .collect();
            let mut w = BitWriter::new();
            for &(v, n) in &values {
                let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
                w.write_bits(masked, n);
            }
            let buf = w.finish();
            let mut r = BitReader::new(&buf);
            for &(v, n) in &values {
                let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
                assert_eq!(r.read_bits(n).unwrap(), masked);
            }
        });
    }
}
