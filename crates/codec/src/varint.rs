//! LEB128 unsigned varints and zigzag mapping for signed integers.

use crate::CodecError;

/// Appends `v` as a LEB128 varint.
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint starting at `*pos`, advancing it.
pub fn read_uvarint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(CodecError::Corrupt("varint overflow"));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt("varint too long"));
        }
    }
}

/// Maps signed to unsigned so small magnitudes get small codes:
/// 0→0, −1→1, 1→2, −2→3, …
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_rng::check;

    #[test]
    fn known_encodings() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 0);
        write_uvarint(&mut buf, 127);
        write_uvarint(&mut buf, 128);
        write_uvarint(&mut buf, 300);
        assert_eq!(buf, vec![0x00, 0x7F, 0x80, 0x01, 0xAC, 0x02]);
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), 0);
        assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), 127);
        assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), 128);
        assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), 300);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn max_value_roundtrips() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), u64::MAX);
    }

    #[test]
    fn truncated_varint_errors() {
        let buf = [0x80u8, 0x80];
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), Err(CodecError::Truncated));
    }

    #[test]
    fn zigzag_known_values() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
    }

    #[test]
    fn uvarint_roundtrip() {
        check(0x7A1, 512, |rng| {
            let v = rng.next_u64();
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        });
    }

    #[test]
    fn zigzag_roundtrip() {
        check(0x7A2, 512, |rng| {
            let v = rng.next_u64() as i64;
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        });
    }
}
