//! Little helpers for serializing compressor headers and sections.

use amrviz_codec::{read_uvarint, write_uvarint, CodecError};

/// Append-only byte buffer with typed writers.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn uvarint(&mut self, v: u64) {
        write_uvarint(&mut self.buf, v);
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte section.
    pub fn section(&mut self, bytes: &[u8]) {
        self.uvarint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor-based reader matching [`ByteWriter`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    pub fn uvarint(&mut self) -> Result<u64, CodecError> {
        read_uvarint(self.buf, &mut self.pos)
    }

    pub fn f64(&mut self) -> Result<f64, CodecError> {
        let end = self.pos + 8;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(CodecError::UnexpectedEof)?;
        self.pos = end;
        Ok(f64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    pub fn f32(&mut self) -> Result<f32, CodecError> {
        let end = self.pos + 4;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(CodecError::UnexpectedEof)?;
        self.pos = end;
        Ok(f32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Length-prefixed byte section.
    pub fn section(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.uvarint()? as usize;
        let end = self
            .pos
            .checked_add(len)
            .ok_or(CodecError::Malformed("section length overflow"))?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(CodecError::UnexpectedEof)?;
        self.pos = end;
        Ok(bytes)
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.uvarint(300);
        w.f64(-1.5);
        w.f32(2.25);
        w.section(b"hello");
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.uvarint().unwrap(), 300);
        assert_eq!(r.f64().unwrap(), -1.5);
        assert_eq!(r.f32().unwrap(), 2.25);
        assert_eq!(r.section().unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn eof_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.f64().is_err());
        let mut r = ByteReader::new(&[5]); // section claims 5 bytes, has 0
        assert!(r.section().is_err());
    }
}
