//! Little helpers for serializing compressor headers and sections.
//!
//! [`ByteReader`] carries a [`DecodeBudget`]: declared section lengths and
//! box dimensions are validated against it (and the remaining buffer)
//! before anything is sliced or allocated, so corrupted length prefixes
//! surface as [`CodecError`]s instead of panics or absurd allocations.

use amrviz_codec::{read_uvarint, write_uvarint, CodecError, DecodeBudget};

/// Append-only byte buffer with typed writers.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Builds a writer that appends to an existing buffer; the buffer comes
    /// back out of [`ByteWriter::finish`]. Lets streams be assembled
    /// directly in caller-owned or rented scratch storage instead of a
    /// fresh allocation per stream.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        ByteWriter { buf }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn uvarint(&mut self, v: u64) {
        write_uvarint(&mut self.buf, v);
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// 8-byte little-endian `u64` (checksums).
    pub fn u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte section.
    pub fn section(&mut self, bytes: &[u8]) {
        self.uvarint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor-based reader matching [`ByteWriter`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    budget: DecodeBudget,
}

impl<'a> ByteReader<'a> {
    /// Reader with the default (permissive) budget.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader::with_budget(buf, DecodeBudget::default())
    }

    /// Reader enforcing `budget` on sections and dimensions.
    pub fn with_budget(buf: &'a [u8], budget: DecodeBudget) -> Self {
        ByteReader {
            buf,
            pos: 0,
            budget,
        }
    }

    /// The budget this reader enforces.
    pub fn budget(&self) -> &DecodeBudget {
        &self.budget
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub fn uvarint(&mut self) -> Result<u64, CodecError> {
        read_uvarint(self.buf, &mut self.pos)
    }

    /// Reads exactly `n` bytes, with checked cursor arithmetic.
    fn exact(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    pub fn f64(&mut self) -> Result<f64, CodecError> {
        let bytes = self.exact(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(f64::from_le_bytes(arr))
    }

    pub fn f32(&mut self) -> Result<f32, CodecError> {
        let bytes = self.exact(4)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(bytes);
        Ok(f32::from_le_bytes(arr))
    }

    /// 8-byte little-endian `u64` (checksums).
    pub fn u64_le(&mut self) -> Result<u64, CodecError> {
        let bytes = self.exact(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    /// Length-prefixed byte section. The declared length is validated
    /// against the remaining buffer *and* the budget before slicing.
    pub fn section(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.uvarint()? as usize;
        self.budget.check_section(len, self.remaining())?;
        self.exact(len)
    }

    /// Three box dimensions, each budget-checked (nonzero, bounded) and the
    /// product validated against both `usize` overflow and the budget's
    /// value cap. Returns `([nx, ny, nz], n_cells)`.
    pub fn dims3(&mut self) -> Result<([usize; 3], usize), CodecError> {
        let (dx, dy, dz) = (self.uvarint()?, self.uvarint()?, self.uvarint()?);
        let nx = self.budget.check_dim(dx as usize)?;
        let ny = self.budget.check_dim(dy as usize)?;
        let nz = self.budget.check_dim(dz as usize)?;
        let n = nx
            .checked_mul(ny)
            .and_then(|v| v.checked_mul(nz))
            .ok_or(CodecError::Corrupt("dims overflow"))?;
        self.budget.check_values(n)?;
        Ok(([nx, ny, nz], n))
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.uvarint(300);
        w.f64(-1.5);
        w.f32(2.25);
        w.section(b"hello");
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.uvarint().unwrap(), 300);
        assert_eq!(r.f64().unwrap(), -1.5);
        assert_eq!(r.f32().unwrap(), 2.25);
        assert_eq!(r.section().unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn eof_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.f64().is_err());
        let mut r = ByteReader::new(&[5]); // section claims 5 bytes, has 0
        assert!(r.section().is_err());
    }

    #[test]
    fn u64_le_roundtrips() {
        let mut w = ByteWriter::new();
        w.u64_le(0xdead_beef_cafe_f00d);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u64_le().unwrap(), 0xdead_beef_cafe_f00d);
        assert!(r.u64_le().is_err());
    }

    #[test]
    fn dims3_validates_against_budget() {
        let mut w = ByteWriter::new();
        w.uvarint(8);
        w.uvarint(8);
        w.uvarint(8);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.dims3().unwrap(), ([8, 8, 8], 512));

        // One huge axis: rejected by the dim cap, not allocated.
        let mut w = ByteWriter::new();
        w.uvarint(8);
        w.uvarint(1 << 50);
        w.uvarint(8);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert!(r.dims3().is_err());

        // Axes individually fine but the product busts the value cap.
        let budget = amrviz_codec::DecodeBudget::strict();
        let mut w = ByteWriter::new();
        w.uvarint(4000);
        w.uvarint(4000);
        w.uvarint(4000);
        let buf = w.finish();
        let mut r = ByteReader::with_budget(&buf, budget);
        assert!(r.dims3().is_err());
    }

    #[test]
    fn budget_caps_section_length() {
        let mut w = ByteWriter::new();
        w.section(&vec![7u8; 512]);
        let buf = w.finish();
        let tight = amrviz_codec::DecodeBudget {
            max_section_bytes: 16,
            ..amrviz_codec::DecodeBudget::strict()
        };
        let mut r = ByteReader::with_budget(&buf, tight);
        assert!(r.section().is_err());
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.section().unwrap().len(), 512);
    }
}
