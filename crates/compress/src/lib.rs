//! Error-bounded lossy compression for scientific floating-point data.
//!
//! Two SZ-family compressors are implemented from scratch, matching the
//! algorithmic structure of the two the paper evaluates (§3.3):
//!
//! * [`SzLr`] — "SZ-L/R" (Liang et al. 2018): the volume is partitioned into
//!   6×6×6 blocks and each block independently chooses between a 3D
//!   first-order **Lorenzo** predictor and a per-block **linear regression**
//!   plane. Block locality is what produces the characteristic block-wise
//!   artifacts at large error bounds — and what makes the method strong on
//!   irregular data (Nyx).
//! * [`SzInterp`] — "SZ-Interp" (Zhao et al. 2021): a **global** multi-level
//!   cubic-spline interpolation predictor over the whole volume. Global
//!   smoothness is what makes it excel on smooth data (WarpX) and what
//!   produces smooth-but-wrong geometry on complex regions.
//!
//! Both share the same error-bounded linear quantizer with outlier escape
//! ([`quantizer`]) and the same entropy backend (Huffman + LZSS from
//! `amrviz-codec`), and both guarantee `|x − x̂| ≤ eb` pointwise.
//!
//! [`ZfpLike`] adds a fixed-block transform codec in the spirit of ZFP
//! (mentioned, but not evaluated, by the paper) and [`amr_codec`] applies
//! any compressor level-by-level to an AMR hierarchy, optionally skipping
//! the redundant coarse data (paper §2.2).
//!
//! ```
//! use amrviz_compress::{Compressor, ErrorBound, Field3, SzInterp};
//!
//! let field = Field3::from_fn([32, 32, 32], |i, j, k| {
//!     (i as f64 * 0.2).sin() + (j as f64 * 0.15).cos() + 0.01 * k as f64
//! });
//! let blob = SzInterp.compress(&field, ErrorBound::Rel(1e-3));
//! assert!(blob.len() * 8 < field.nbytes()); // > 8x smaller
//! let recon = SzInterp.decompress(&blob).unwrap();
//! let eb = 1e-3 * field.range();
//! for (a, b) in field.data.iter().zip(&recon.data) {
//!     assert!((a - b).abs() <= eb);
//! }
//! ```

pub mod amr_codec;
pub mod field;
pub mod interp;
pub mod lorenzo;
pub mod quantizer;
pub mod regression;
pub mod stats;
pub mod szlr;
pub mod wire;
pub mod zfp_like;
pub mod zmesh;

pub use amr_codec::{
    compress_hierarchy_field, decompress_hierarchy_field, decompress_hierarchy_field_into,
    decompress_hierarchy_field_policy, AmrCodecConfig, CompressedHierarchyField, DecodePolicy,
    DecodeReport, FabStatus, RepairKind,
};
pub use amrviz_codec::DecodeBudget;
pub use field::{Field3, Field3View, FieldMut};
pub use interp::SzInterp;
pub use stats::CompressionStats;
pub use szlr::{PredictorMode, SzLr};
pub use zfp_like::ZfpLike;
pub use zmesh::{compress_zmesh, decompress_zmesh};

/// User-facing error-bound specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound: `|x − x̂| ≤ v`.
    Abs(f64),
    /// Value-range-relative bound: `|x − x̂| ≤ v · (max − min)`, the mode
    /// the paper sweeps (1e-4 … 1e-2).
    Rel(f64),
}

impl ErrorBound {
    /// Resolves to an absolute bound given the data's value range.
    pub fn to_abs(self, range: f64) -> f64 {
        match self {
            ErrorBound::Abs(v) => v,
            ErrorBound::Rel(v) => v * range,
        }
    }
}

/// Errors produced by decompression.
#[derive(Debug)]
pub enum CompressError {
    /// Stream failed structural validation.
    Malformed(String),
    /// Underlying entropy-codec failure.
    Codec(amrviz_codec::CodecError),
    /// A specific fab blob failed checksum or decode under
    /// [`amr_codec::DecodePolicy::Strict`]; names the offending position.
    FabDecode {
        /// Hierarchy level of the failing fab.
        level: usize,
        /// Fab index within the level.
        fab: usize,
        /// What went wrong with that blob.
        cause: String,
    },
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Malformed(m) => write!(f, "malformed compressed stream: {m}"),
            CompressError::Codec(e) => write!(f, "codec error: {e}"),
            CompressError::FabDecode { level, fab, cause } => {
                write!(f, "fab decode failed at level {level}, fab {fab}: {cause}")
            }
        }
    }
}

impl CompressError {
    /// Maps this failure onto the codec taxonomy so callers (serve, torture)
    /// can decide retryable-vs-fatal without string matching: `"corrupt"`,
    /// `"truncated"`, or `"budget"`. Structural failures above the codec
    /// layer are corruption; a `FabDecode` cause string produced from a
    /// [`amrviz_codec::CodecError`] keeps its class.
    pub fn class(&self) -> &'static str {
        match self {
            CompressError::Malformed(_) => "corrupt",
            CompressError::Codec(e) => e.class(),
            CompressError::FabDecode { cause, .. } => {
                // Cause strings are rendered Display output; the class
                // prefixes below are stable (tested in the codec crate).
                if cause.contains("decode budget exceeded") {
                    "budget"
                } else if cause.contains("truncated stream") {
                    "truncated"
                } else {
                    "corrupt"
                }
            }
        }
    }

    /// True when the failure is the cooperative-deadline breach — the one
    /// class a client may retry with a larger budget.
    pub fn is_deadline(&self) -> bool {
        match self {
            CompressError::Codec(e) => e.is_deadline(),
            CompressError::FabDecode { cause, .. } => {
                cause.contains(amrviz_codec::CodecError::DEADLINE_MSG)
            }
            CompressError::Malformed(_) => false,
        }
    }
}

impl std::error::Error for CompressError {}

impl From<amrviz_codec::CodecError> for CompressError {
    fn from(e: amrviz_codec::CodecError) -> Self {
        CompressError::Codec(e)
    }
}

/// A lossy, error-bounded compressor for 3D scalar fields.
///
/// The primary methods are the zero-copy pair: [`Compressor::compress_into`]
/// reads a borrowed [`Field3View`] and appends the self-describing stream to
/// a caller-owned buffer; [`Compressor::decompress_into`] decodes into a
/// reusable `Vec<f64>` and returns the dims. The owned `compress` /
/// `decompress*` API is kept as default-impl shims over those, so existing
/// callers (and the doc examples) keep working unchanged — byte-for-byte.
pub trait Compressor: Sync {
    /// Short identifier used in reports ("SZ-L/R", "SZ-Itp", …).
    fn name(&self) -> &'static str;

    /// Appends the compressed stream for `field` to `out`. The stream is
    /// fully self-describing (dims and bound are recoverable), and the
    /// appended bytes are identical to what [`Compressor::compress`]
    /// returns for the same input.
    fn compress_into(&self, field: Field3View<'_>, bound: ErrorBound, out: &mut Vec<u8>);

    /// Owned-API shim over [`Compressor::compress_into`].
    fn compress(&self, field: &Field3, bound: ErrorBound) -> Vec<u8> {
        let mut out = Vec::new();
        self.compress_into(field.view(), bound, &mut out);
        out
    }

    /// Decompresses under the default (permissive) [`DecodeBudget`].
    fn decompress(&self, bytes: &[u8]) -> Result<Field3, CompressError> {
        self.decompress_budgeted(bytes, &amrviz_codec::DecodeBudget::default())
    }

    /// Owned-API shim over [`Compressor::decompress_into`].
    fn decompress_budgeted(
        &self,
        bytes: &[u8],
        budget: &amrviz_codec::DecodeBudget,
    ) -> Result<Field3, CompressError> {
        let mut data = Vec::new();
        let dims = self.decompress_into(bytes, budget, &mut data)?;
        Ok(Field3::new(dims, data))
    }

    /// Decompresses into `out` (cleared first, capacity reused) with every
    /// declared dimension, count, and section length validated against
    /// `budget` before allocation; returns the decoded dims. On error `out`
    /// may hold a partial prefix; its contents are unspecified.
    fn decompress_into(
        &self,
        bytes: &[u8],
        budget: &amrviz_codec::DecodeBudget,
        out: &mut Vec<f64>,
    ) -> Result<[usize; 3], CompressError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bound_resolution() {
        assert_eq!(ErrorBound::Abs(0.5).to_abs(100.0), 0.5);
        assert_eq!(ErrorBound::Rel(1e-2).to_abs(100.0), 1.0);
    }
}
