//! Dense 3D scalar fields — the unit of compression.
//!
//! [`Field3`] owns its storage; [`Field3View`] and [`FieldMut`] borrow it.
//! The compressors operate on views (see [`Compressor`](crate::Compressor)),
//! so callers can hand in a sub-region gathered into a rented scratch
//! buffer without ever materializing an owned `Field3`.

/// An owned, dense, x-fastest 3D scalar field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    pub dims: [usize; 3],
    pub data: Vec<f64>,
}

impl Field3 {
    pub fn new(dims: [usize; 3], data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            dims[0] * dims[1] * dims[2],
            "field buffer does not match dims"
        );
        Field3 { dims, data }
    }

    pub fn zeros(dims: [usize; 3]) -> Self {
        Field3 {
            dims,
            data: vec![0.0; dims[0] * dims[1] * dims[2]],
        }
    }

    /// Builds a field by evaluating `f(i, j, k)`.
    pub fn from_fn(dims: [usize; 3], mut f: impl FnMut(usize, usize, usize) -> f64) -> Self {
        let [nx, ny, nz] = dims;
        let mut data = Vec::with_capacity(nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    data.push(f(i, j, k));
                }
            }
        }
        Field3 { dims, data }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2]);
        i + self.dims[0] * (j + self.dims[1] * k)
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// `(min, max)` of the data (0.0 pair for empty fields).
    pub fn min_max(&self) -> (f64, f64) {
        if self.data.is_empty() {
            return (0.0, 0.0);
        }
        self.data
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            })
    }

    /// Value range `max − min`.
    pub fn range(&self) -> f64 {
        let (lo, hi) = self.min_max();
        hi - lo
    }

    /// Size of the raw data in bytes.
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Borrows the field as a [`Field3View`].
    #[inline]
    pub fn view(&self) -> Field3View<'_> {
        Field3View {
            dims: self.dims,
            data: &self.data,
        }
    }

    /// Borrows the field as a [`FieldMut`].
    #[inline]
    pub fn view_mut(&mut self) -> FieldMut<'_> {
        FieldMut {
            dims: self.dims,
            data: &mut self.data,
        }
    }
}

/// A borrowed, dense, x-fastest 3D scalar field — the zero-copy input type
/// of the compressors. `Copy`, so it threads through call chains freely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Field3View<'a> {
    pub dims: [usize; 3],
    pub data: &'a [f64],
}

impl<'a> Field3View<'a> {
    pub fn new(dims: [usize; 3], data: &'a [f64]) -> Self {
        assert_eq!(
            data.len(),
            dims[0] * dims[1] * dims[2],
            "field buffer does not match dims"
        );
        Field3View { dims, data }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2]);
        i + self.dims[0] * (j + self.dims[1] * k)
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// `(min, max)` of the data (0.0 pair for empty fields).
    pub fn min_max(&self) -> (f64, f64) {
        if self.data.is_empty() {
            return (0.0, 0.0);
        }
        self.data
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            })
    }

    /// Value range `max − min`.
    pub fn range(&self) -> f64 {
        let (lo, hi) = self.min_max();
        hi - lo
    }

    /// Size of the raw data in bytes.
    pub fn nbytes(&self) -> usize {
        std::mem::size_of_val(self.data)
    }

    /// Copies the view into an owned [`Field3`].
    pub fn to_owned_field(&self) -> Field3 {
        Field3 {
            dims: self.dims,
            data: self.data.to_vec(),
        }
    }
}

/// A mutably borrowed dense field: reconstruction buffers, rented scratch,
/// or fab interiors viewed as a volume without transferring ownership.
#[derive(Debug, PartialEq)]
pub struct FieldMut<'a> {
    pub dims: [usize; 3],
    pub data: &'a mut [f64],
}

impl<'a> FieldMut<'a> {
    pub fn new(dims: [usize; 3], data: &'a mut [f64]) -> Self {
        assert_eq!(
            data.len(),
            dims[0] * dims[1] * dims[2],
            "field buffer does not match dims"
        );
        FieldMut { dims, data }
    }

    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2]);
        i + self.dims[0] * (j + self.dims[1] * k)
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let idx = self.idx(i, j, k);
        self.data[idx] = v;
    }

    /// Reborrows immutably.
    #[inline]
    pub fn as_view(&self) -> Field3View<'_> {
        Field3View {
            dims: self.dims,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_x_fastest() {
        let f = Field3::from_fn([2, 3, 4], |i, j, k| (i + 10 * j + 100 * k) as f64);
        assert_eq!(f.at(1, 2, 3), 321.0);
        assert_eq!(f.data[1], 1.0);
        assert_eq!(f.data[2], 10.0);
        assert_eq!(f.data[6], 100.0);
        assert_eq!(f.len(), 24);
        assert_eq!(f.nbytes(), 192);
    }

    #[test]
    fn range_and_minmax() {
        let f = Field3::new([2, 1, 1], vec![-3.0, 7.0]);
        assert_eq!(f.min_max(), (-3.0, 7.0));
        assert_eq!(f.range(), 10.0);
    }

    #[test]
    #[should_panic(expected = "does not match dims")]
    fn dims_checked() {
        Field3::new([2, 2, 2], vec![0.0; 7]);
    }

    #[test]
    fn views_borrow_without_copying() {
        let f = Field3::from_fn([2, 3, 4], |i, j, k| (i + 10 * j + 100 * k) as f64);
        let v = f.view();
        assert_eq!(v.at(1, 2, 3), 321.0);
        assert_eq!(v.min_max(), f.min_max());
        assert_eq!(v.range(), f.range());
        assert_eq!(v.nbytes(), f.nbytes());
        assert_eq!(
            v.data.as_ptr(),
            f.data.as_ptr(),
            "view must alias the field"
        );
        assert_eq!(v.to_owned_field(), f);
    }

    #[test]
    fn field_mut_writes_through() {
        let mut f = Field3::zeros([2, 2, 2]);
        let mut m = f.view_mut();
        m.set(1, 1, 1, 9.0);
        assert_eq!(m.as_view().at(1, 1, 1), 9.0);
        assert_eq!(f.at(1, 1, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "does not match dims")]
    fn view_dims_checked() {
        Field3View::new([2, 2, 2], &[0.0; 7]);
    }
}
