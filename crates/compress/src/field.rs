//! Dense 3D scalar fields — the unit of compression.

/// An owned, dense, x-fastest 3D scalar field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    pub dims: [usize; 3],
    pub data: Vec<f64>,
}

impl Field3 {
    pub fn new(dims: [usize; 3], data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            dims[0] * dims[1] * dims[2],
            "field buffer does not match dims"
        );
        Field3 { dims, data }
    }

    pub fn zeros(dims: [usize; 3]) -> Self {
        Field3 { dims, data: vec![0.0; dims[0] * dims[1] * dims[2]] }
    }

    /// Builds a field by evaluating `f(i, j, k)`.
    pub fn from_fn(dims: [usize; 3], mut f: impl FnMut(usize, usize, usize) -> f64) -> Self {
        let [nx, ny, nz] = dims;
        let mut data = Vec::with_capacity(nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    data.push(f(i, j, k));
                }
            }
        }
        Field3 { dims, data }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2]);
        i + self.dims[0] * (j + self.dims[1] * k)
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// `(min, max)` of the data (0.0 pair for empty fields).
    pub fn min_max(&self) -> (f64, f64) {
        if self.data.is_empty() {
            return (0.0, 0.0);
        }
        self.data.iter().fold(
            (f64::INFINITY, f64::NEG_INFINITY),
            |(lo, hi), &v| (lo.min(v), hi.max(v)),
        )
    }

    /// Value range `max − min`.
    pub fn range(&self) -> f64 {
        let (lo, hi) = self.min_max();
        hi - lo
    }

    /// Size of the raw data in bytes.
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_x_fastest() {
        let f = Field3::from_fn([2, 3, 4], |i, j, k| (i + 10 * j + 100 * k) as f64);
        assert_eq!(f.at(1, 2, 3), 321.0);
        assert_eq!(f.data[1], 1.0);
        assert_eq!(f.data[2], 10.0);
        assert_eq!(f.data[6], 100.0);
        assert_eq!(f.len(), 24);
        assert_eq!(f.nbytes(), 192);
    }

    #[test]
    fn range_and_minmax() {
        let f = Field3::new([2, 1, 1], vec![-3.0, 7.0]);
        assert_eq!(f.min_max(), (-3.0, 7.0));
        assert_eq!(f.range(), 10.0);
    }

    #[test]
    #[should_panic(expected = "does not match dims")]
    fn dims_checked() {
        Field3::new([2, 2, 2], vec![0.0; 7]);
    }
}
