//! Compression-ratio bookkeeping.

use amrviz_json::{Json, ToJson};

/// Sizes and derived ratios for one compression run.
#[derive(Debug, Clone, Copy)]
pub struct CompressionStats {
    /// Number of scalar values compressed.
    pub n_values: usize,
    /// Bytes of the original representation (8 bytes/value — we store f64).
    pub original_bytes: usize,
    /// Bytes of the compressed stream.
    pub compressed_bytes: usize,
}

impl CompressionStats {
    pub fn new(n_values: usize, compressed_bytes: usize) -> Self {
        CompressionStats {
            n_values,
            original_bytes: n_values * 8,
            compressed_bytes,
        }
    }

    /// Compression ratio against the native f64 representation.
    pub fn ratio(&self) -> f64 {
        self.original_bytes as f64 / self.compressed_bytes as f64
    }

    /// Compression ratio against a single-precision baseline
    /// (4 bytes/value). The paper's Nyx/WarpX dumps are f32, so this is the
    /// number comparable to its Table 2.
    pub fn ratio_vs_f32(&self) -> f64 {
        (self.n_values * 4) as f64 / self.compressed_bytes as f64
    }

    /// Bits per value in the compressed stream — the x-axis of the paper's
    /// rate-distortion plots (Figs. 12–13).
    pub fn bits_per_value(&self) -> f64 {
        self.compressed_bytes as f64 * 8.0 / self.n_values as f64
    }
}

impl ToJson for CompressionStats {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("n_values", self.n_values)
            .set("original_bytes", self.original_bytes)
            .set("compressed_bytes", self.compressed_bytes);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_consistent() {
        let s = CompressionStats::new(1000, 1000);
        assert_eq!(s.original_bytes, 8000);
        assert!((s.ratio() - 8.0).abs() < 1e-12);
        assert!((s.ratio_vs_f32() - 4.0).abs() < 1e-12);
        assert!((s.bits_per_value() - 8.0).abs() < 1e-12);
    }
}
