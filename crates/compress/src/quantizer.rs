//! Error-bounded linear quantization with outlier escape — the error-control
//! stage shared by every SZ-style pipeline.
//!
//! Given a prediction `p` for a true value `x` and an absolute bound `eb`,
//! the residual is quantized to `m = round((x − p) / (2·eb))`, reconstructed
//! as `x̂ = p + 2·eb·m`, which guarantees `|x − x̂| ≤ eb`. The symbol stream
//! uses `0` as an escape for *outliers* — residuals too large for the bin
//! budget, or cases where floating-point cancellation would break the bound —
//! whose values are stored verbatim.

/// Quantization symbol radius: codes are `m + RADIUS`, so the symbol
/// alphabet is `1 ..= 2·RADIUS` with `0` reserved for outliers.
pub const RADIUS: i64 = 1 << 15;

/// Outcome of quantizing one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Quantized {
    /// In-range residual: symbol code and the reconstructed value.
    Code { code: u32, recon: f64 },
    /// Out-of-range: the value must be stored verbatim.
    Outlier,
}

/// Tally of quantization outcomes over one encode pass.
///
/// Encoders accumulate locally (no recorder traffic on the per-value fast
/// path) and publish once per stream via [`QuantStats::report`], which is
/// how the `quantizer.codes` / `quantizer.outliers` counters in
/// `amrviz-obs` are fed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QuantStats {
    /// Values that quantized to an in-range symbol.
    pub codes: u64,
    /// Values that escaped as verbatim outliers.
    pub outliers: u64,
}

impl QuantStats {
    /// Records one quantization outcome.
    #[inline]
    pub fn tally(&mut self, q: &Quantized) {
        match q {
            Quantized::Code { .. } => self.codes += 1,
            Quantized::Outlier => self.outliers += 1,
        }
    }

    /// Publishes the tally to the global observability counters (batched:
    /// two counter adds per stream, regardless of value count) and records
    /// the stream's integer hit rate (% of values that quantized in-range)
    /// into the `quantizer.hit_pct` histogram, giving the *distribution*
    /// of hit rates across streams rather than just the global mean.
    pub fn report(&self) {
        amrviz_obs::counter!("quantizer.codes", self.codes);
        amrviz_obs::counter!("quantizer.outliers", self.outliers);
        let total = self.codes + self.outliers;
        if let Some(hit_pct) = (self.codes * 100).checked_div(total) {
            amrviz_obs::histogram!("quantizer.hit_pct", hit_pct);
        }
    }
}

/// Error-bounded linear quantizer.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    eb: f64,
    inv_2eb: f64,
}

impl Quantizer {
    /// # Panics
    /// Panics if `eb` is not strictly positive and finite.
    pub fn new(eb: f64) -> Self {
        assert!(eb > 0.0 && eb.is_finite(), "error bound must be positive");
        Quantizer {
            eb,
            inv_2eb: 0.5 / eb,
        }
    }

    pub fn eb(&self) -> f64 {
        self.eb
    }

    /// Quantizes `actual` against prediction `pred`.
    #[inline]
    pub fn quantize(&self, pred: f64, actual: f64) -> Quantized {
        let diff = actual - pred;
        let m = (diff * self.inv_2eb).round();
        if m.abs() >= RADIUS as f64 || !m.is_finite() {
            return Quantized::Outlier;
        }
        let recon = pred + 2.0 * self.eb * m;
        // Floating-point safety net: if cancellation pushed the
        // reconstruction outside the bound, escape to an outlier.
        if (recon - actual).abs() > self.eb {
            return Quantized::Outlier;
        }
        Quantized::Code {
            code: (m as i64 + RADIUS) as u32,
            recon,
        }
    }

    /// Reconstructs from a symbol code (inverse of the `Code` arm).
    #[inline]
    pub fn reconstruct(&self, pred: f64, code: u32) -> f64 {
        let m = code as i64 - RADIUS;
        pred + 2.0 * self.eb * m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_rng::check;

    #[test]
    fn stats_tally_outcomes() {
        let q = Quantizer::new(0.1);
        let mut stats = QuantStats::default();
        stats.tally(&q.quantize(0.0, 0.05));
        stats.tally(&q.quantize(0.0, 1e9));
        stats.tally(&q.quantize(0.0, f64::NAN));
        assert_eq!(
            stats,
            QuantStats {
                codes: 1,
                outliers: 2
            }
        );
        stats.report(); // recorder disabled: must be a free no-op
    }

    #[test]
    fn zero_residual_gets_center_code() {
        let q = Quantizer::new(0.1);
        match q.quantize(5.0, 5.0) {
            Quantized::Code { code, recon } => {
                assert_eq!(code, RADIUS as u32);
                assert_eq!(recon, 5.0);
            }
            Quantized::Outlier => panic!("unexpected outlier"),
        }
    }

    #[test]
    fn bound_respected_for_in_range() {
        let q = Quantizer::new(0.01);
        for &(p, x) in &[(0.0, 0.004), (1.0, 1.5), (-3.0, -2.0), (10.0, 10.0099)] {
            if let Quantized::Code { recon, code } = q.quantize(p, x) {
                assert!((recon - x).abs() <= 0.01, "bound violated: {recon} vs {x}");
                assert_eq!(q.reconstruct(p, code), recon);
            }
        }
    }

    #[test]
    fn large_residual_is_outlier() {
        let q = Quantizer::new(1e-6);
        assert_eq!(q.quantize(0.0, 1.0), Quantized::Outlier);
    }

    #[test]
    fn nan_and_inf_are_outliers() {
        let q = Quantizer::new(0.1);
        assert_eq!(q.quantize(0.0, f64::NAN), Quantized::Outlier);
        assert_eq!(q.quantize(0.0, f64::INFINITY), Quantized::Outlier);
        assert_eq!(q.quantize(f64::NAN, 0.0), Quantized::Outlier);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_eb() {
        Quantizer::new(0.0);
    }

    #[test]
    fn roundtrip_never_violates_bound() {
        check(0x9AA, 512, |rng| {
            let pred = rng.range_f64(-1e12, 1e12);
            let actual = rng.range_f64(-1e12, 1e12);
            let eb_exp = rng.range_i64(-9, 2) as i32;
            let eb = 10f64.powi(eb_exp);
            let q = Quantizer::new(eb);
            match q.quantize(pred, actual) {
                Quantized::Code { code, recon } => {
                    assert!((recon - actual).abs() <= eb);
                    assert!(code > 0 && code <= 2 * RADIUS as u32);
                    assert_eq!(q.reconstruct(pred, code), recon);
                }
                Quantized::Outlier => {} // stored verbatim → exact
            }
        });
    }
}
