//! A zMesh-style baseline: cross-level 1D reordering + 1D prediction
//! (Luo et al., IPDPS 2021 — the related-work baseline the paper's
//! introduction discusses).
//!
//! zMesh's idea: in patch-based AMR, a covered coarse cell and its fine
//! children describe the same physical region, so interleaving them in one
//! 1D stream puts redundant values next to each other where a 1D predictor
//! can exploit them. The cost — and the reason the paper's TAC/AMRIC line
//! of work moved on — is that flattening to 1D destroys 3D spatial
//! locality, so higher-dimensional prediction is impossible.
//!
//! Layout of the stream for a two-level hierarchy:
//! for every coarse cell in x-fastest order: the coarse value, then (if the
//! cell is covered by the fine level) its `r³` fine children. Uncovered
//! fine data does not exist; unrefined coarse cells contribute one value.
//! Residuals against a 1D first-order (previous-value) Lorenzo predictor
//! are quantized with the shared error-bounded quantizer and entropy-coded
//! with Huffman + LZSS.

use amrviz_amr::multifab::rasterize_into;
use amrviz_amr::{AmrHierarchy, Fab, IntVect, MultiFab};
use amrviz_codec::{
    huffman_decode_budgeted, huffman_encode, lzss_compress, lzss_decompress_budgeted, DecodeBudget,
};

use crate::quantizer::{Quantized, Quantizer};
use crate::wire::{ByteReader, ByteWriter};
use crate::{CompressError, ErrorBound};

const MAGIC: u8 = 0xA4;

/// Compresses one field of a **two-level** hierarchy with the zMesh-style
/// reordering. Returns the self-describing stream.
///
/// # Panics
/// Panics if the hierarchy does not have exactly two levels (the published
/// zMesh evaluation is two-level; deeper trees would nest recursively).
pub fn compress_zmesh(
    hier: &AmrHierarchy,
    field: &str,
    bound: ErrorBound,
) -> Result<Vec<u8>, CompressError> {
    assert_eq!(hier.num_levels(), 2, "zMesh baseline handles two levels");
    let f = hier
        .field(field)
        .map_err(|e| CompressError::Malformed(e.to_string()))?;
    let ratio = hier.ratio_at(0);

    // Dense views of both levels.
    let dom0 = hier.level_domain(0);
    let dom1 = hier.level_domain(1);
    let mut coarse = vec![0.0f64; dom0.num_cells()];
    rasterize_into(&f.levels[0], dom0, &mut coarse);
    let mut fine = vec![0.0f64; dom1.num_cells()];
    rasterize_into(&f.levels[1], dom1, &mut fine);
    let covered = hier.covered_mask(0);

    // Global range → absolute bound.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for mf in &f.levels {
        let (l, h) = mf.min_max();
        lo = lo.min(l);
        hi = hi.max(h);
    }
    let eb = {
        let e = bound.to_abs(hi - lo);
        if e > 0.0 {
            e
        } else {
            1e-300
        }
    };
    let q = Quantizer::new(eb);

    // The interleaved 1D walk with previous-reconstruction prediction.
    let [fnx, fny, _] = dom1.size();
    let mut codes: Vec<u32> = Vec::with_capacity(coarse.len() + fine.len());
    let mut outliers: Vec<f64> = Vec::new();
    let mut prev = 0.0f64;
    let push = |v: f64, prev: &mut f64, codes: &mut Vec<u32>, outliers: &mut Vec<f64>| match q
        .quantize(*prev, v)
    {
        Quantized::Code { code, recon } => {
            codes.push(code);
            *prev = recon;
        }
        Quantized::Outlier => {
            codes.push(0);
            outliers.push(v);
            *prev = v;
        }
    };
    for (n, cell) in dom0.cells().enumerate() {
        push(coarse[n], &mut prev, &mut codes, &mut outliers);
        if covered.get_unchecked(cell) {
            let base = cell.refine(ratio);
            for dz in 0..ratio {
                for dy in 0..ratio {
                    for dx in 0..ratio {
                        let c = base + IntVect::new(dx, dy, dz);
                        let d = c - dom1.lo();
                        push(
                            fine[d[0] as usize + fnx * (d[1] as usize + fny * d[2] as usize)],
                            &mut prev,
                            &mut codes,
                            &mut outliers,
                        );
                    }
                }
            }
        }
    }

    let mut w = ByteWriter::new();
    w.u8(MAGIC);
    w.f64(eb);
    w.section(&lzss_compress(&huffman_encode(&codes)));
    let mut ob = Vec::with_capacity(outliers.len() * 8);
    for v in &outliers {
        ob.extend_from_slice(&v.to_le_bytes());
    }
    w.section(&ob);
    Ok(w.finish())
}

/// Decompresses a [`compress_zmesh`] stream back onto the hierarchy's box
/// structure. Fine cells outside the refined region and coarse cells are
/// reconstructed; (coarse) values come back within the bound.
pub fn decompress_zmesh(hier: &AmrHierarchy, bytes: &[u8]) -> Result<Vec<MultiFab>, CompressError> {
    decompress_zmesh_budgeted(hier, bytes, &DecodeBudget::default())
}

/// [`decompress_zmesh`] with declared counts and section lengths validated
/// against `budget` before allocation. (Dense level buffers are sized by
/// the trusted hierarchy structure, not by the stream.)
pub fn decompress_zmesh_budgeted(
    hier: &AmrHierarchy,
    bytes: &[u8],
    budget: &DecodeBudget,
) -> Result<Vec<MultiFab>, CompressError> {
    assert_eq!(hier.num_levels(), 2, "zMesh baseline handles two levels");
    let mut r = ByteReader::with_budget(bytes, *budget);
    if r.u8()? != MAGIC {
        return Err(CompressError::Malformed("bad zMesh magic".into()));
    }
    let eb = r.f64()?;
    if eb.is_nan() || eb <= 0.0 {
        return Err(CompressError::Malformed("bad zMesh bound".into()));
    }
    let q = Quantizer::new(eb);
    let codes = huffman_decode_budgeted(&lzss_decompress_budgeted(r.section()?, budget)?, budget)?;
    let outlier_bytes = r.section()?;
    let mut outliers = outlier_bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")));

    let ratio = hier.ratio_at(0);
    let dom0 = hier.level_domain(0);
    let dom1 = hier.level_domain(1);
    let covered = hier.covered_mask(0);
    let mut coarse = vec![0.0f64; dom0.num_cells()];
    let [fnx, fny, _] = dom1.size();
    let mut fine = vec![0.0f64; dom1.num_cells()];

    let mut code_iter = codes.into_iter();
    let mut prev = 0.0f64;
    let mut pull = |prev: &mut f64| -> Result<f64, CompressError> {
        let code = code_iter
            .next()
            .ok_or_else(|| CompressError::Malformed("code underrun".into()))?;
        let v = if code == 0 {
            outliers
                .next()
                .ok_or_else(|| CompressError::Malformed("outlier underrun".into()))?
        } else {
            q.reconstruct(*prev, code)
        };
        *prev = v;
        Ok(v)
    };
    for (n, cell) in dom0.cells().enumerate() {
        coarse[n] = pull(&mut prev)?;
        if covered.get_unchecked(cell) {
            let base = cell.refine(ratio);
            for dz in 0..ratio {
                for dy in 0..ratio {
                    for dx in 0..ratio {
                        let c = base + IntVect::new(dx, dy, dz);
                        let d = c - dom1.lo();
                        fine[d[0] as usize + fnx * (d[1] as usize + fny * d[2] as usize)] =
                            pull(&mut prev)?;
                    }
                }
            }
        }
    }

    // Scatter dense arrays back to the hierarchy's fabs.
    let coarse_full = Fab::from_vec(dom0, coarse);
    let fine_full = Fab::from_vec(dom1, fine);
    let rebuild = |full: &Fab, ba: &amrviz_amr::BoxArray| {
        MultiFab::from_fabs(
            ba.iter()
                .map(|&bx| {
                    let mut fab = Fab::zeros(bx);
                    fab.copy_from(full);
                    fab
                })
                .collect(),
        )
    };
    Ok(vec![
        rebuild(&coarse_full, hier.box_array(0)),
        rebuild(&fine_full, hier.box_array(1)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_amr::{Box3, BoxArray, Geometry};

    fn hier() -> AmrHierarchy {
        let geom = Geometry::unit(Box3::from_dims(12, 12, 12));
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::single(Box3::new(IntVect::new(8, 8, 8), IntVect::new(19, 19, 19))),
            ],
        )
        .unwrap();
        h.add_field_from_fn("u", |lev, iv| {
            let s = if lev == 0 { 0.4 } else { 0.2 };
            (iv[0] as f64 * s).sin() * 5.0 + (iv[1] as f64 * s).cos() + iv[2] as f64 * s * 0.1
        })
        .unwrap();
        h
    }

    #[test]
    fn roundtrip_within_bound() {
        let h = hier();
        let blob = compress_zmesh(&h, "u", ErrorBound::Rel(1e-3)).unwrap();
        let levels = decompress_zmesh(&h, &blob).unwrap();
        let orig = h.field("u").unwrap();
        // Manually resolve the bound the compressor used.
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for mf in &orig.levels {
            let (l, hh) = mf.min_max();
            lo = lo.min(l);
            hi = hi.max(hh);
        }
        let eb = 1e-3 * (hi - lo);
        // Coarse level: every cell bounded.
        for (ofab, dfab) in orig.levels[0].fabs().iter().zip(levels[0].fabs()) {
            for (o, d) in ofab.data().iter().zip(dfab.data()) {
                assert!((o - d).abs() <= eb * (1.0 + 1e-12));
            }
        }
        // Fine level: bounded inside the refined region.
        for (ofab, dfab) in orig.levels[1].fabs().iter().zip(levels[1].fabs()) {
            for (o, d) in ofab.data().iter().zip(dfab.data()) {
                assert!((o - d).abs() <= eb * (1.0 + 1e-12));
            }
        }
    }

    #[test]
    fn compresses_redundant_hierarchies() {
        // Fine = refined copy of coarse: the interleaving makes children
        // follow their parent, so 1D prediction eats the redundancy.
        let h = hier();
        let blob = compress_zmesh(&h, "u", ErrorBound::Rel(1e-3)).unwrap();
        let n = h.total_cells();
        let ratio = (n * 8) as f64 / blob.len() as f64;
        assert!(ratio > 8.0, "zMesh ratio only {ratio:.1}");
    }

    #[test]
    fn corrupt_stream_rejected() {
        let h = hier();
        let blob = compress_zmesh(&h, "u", ErrorBound::Rel(1e-3)).unwrap();
        assert!(decompress_zmesh(&h, &blob[..4]).is_err());
        let mut bad = blob.clone();
        bad[0] = 0;
        assert!(decompress_zmesh(&h, &bad).is_err());
    }

    #[test]
    fn unknown_field_is_error() {
        let h = hier();
        assert!(compress_zmesh(&h, "nope", ErrorBound::Rel(1e-3)).is_err());
    }
}
