//! 3D first-order Lorenzo prediction.
//!
//! The Lorenzo predictor estimates a value from its already-processed
//! neighbors (the corner of a unit cube):
//!
//! ```text
//! pred(i,j,k) =  v(i−1,j,k) + v(i,j−1,k) + v(i,j,k−1)
//!              − v(i−1,j−1,k) − v(i−1,j,k−1) − v(i,j−1,k−1)
//!              + v(i−1,j−1,k−1)
//! ```
//!
//! Out-of-domain neighbors contribute 0, which degrades gracefully to 2D/1D
//! Lorenzo on faces/edges. During compression the neighbor values must be
//! *reconstructed* values so the decompressor can mirror the computation.

/// Lorenzo prediction reading neighbors from a dense buffer `v` with dims
/// `[nx, ny, nz]`. `v` holds reconstructed values at already-visited
/// positions; positions at or after `(i,j,k)` are never read.
#[inline]
pub fn lorenzo3_predict(v: &[f64], dims: [usize; 3], i: usize, j: usize, k: usize) -> f64 {
    let [nx, ny, _] = dims;
    let idx = |i: usize, j: usize, k: usize| i + nx * (j + ny * k);
    let g = |di: usize, dj: usize, dk: usize| -> f64 {
        // di/dj/dk ∈ {0,1} meaning "subtract one from that axis".
        if (di == 1 && i == 0) || (dj == 1 && j == 0) || (dk == 1 && k == 0) {
            0.0
        } else {
            v[idx(i - di, j - dj, k - dk)]
        }
    };
    g(1, 0, 0) + g(0, 1, 0) + g(0, 0, 1) - g(1, 1, 0) - g(1, 0, 1) - g(0, 1, 1) + g(1, 1, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(dims: [usize; 3], f: impl Fn(usize, usize, usize) -> f64) -> Vec<f64> {
        let [nx, ny, nz] = dims;
        let mut v = Vec::with_capacity(nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    v.push(f(i, j, k));
                }
            }
        }
        v
    }

    #[test]
    fn exact_for_trilinear_polynomials() {
        // Lorenzo-1 reproduces any function of the form
        // a + b·i + c·j + d·k + e·ij + f·ik + g·jk exactly (the residual of
        // the inclusion–exclusion is the pure ijk mixed difference).
        let dims = [6, 5, 4];
        let f = |i: usize, j: usize, k: usize| {
            2.0 + 3.0 * i as f64 - 1.5 * j as f64 + 0.25 * k as f64 + 0.5 * (i * j) as f64
                - 0.125 * (i * k) as f64
                + 0.75 * (j * k) as f64
        };
        let v = dense(dims, f);
        for k in 1..dims[2] {
            for j in 1..dims[1] {
                for i in 1..dims[0] {
                    let p = lorenzo3_predict(&v, dims, i, j, k);
                    assert!(
                        (p - f(i, j, k)).abs() < 1e-9,
                        "at ({i},{j},{k}): {p} vs {}",
                        f(i, j, k)
                    );
                }
            }
        }
    }

    #[test]
    fn origin_predicts_zero() {
        let v = dense([3, 3, 3], |_, _, _| 42.0);
        assert_eq!(lorenzo3_predict(&v, [3, 3, 3], 0, 0, 0), 0.0);
    }

    #[test]
    fn boundary_degrades_to_lower_dim() {
        // On the j=k=0 edge the predictor is 1D Lorenzo: pred = v(i-1,0,0).
        let dims = [4, 3, 3];
        let v = dense(dims, |i, j, k| (i + 10 * j + 100 * k) as f64);
        assert_eq!(lorenzo3_predict(&v, dims, 2, 0, 0), 1.0);
        // On the k=0 face it is 2D Lorenzo:
        // v(i-1,j,0) + v(i,j-1,0) - v(i-1,j-1,0) = 21 + 12 - 11 = 22,
        // exact for this bilinear field.
        assert_eq!(lorenzo3_predict(&v, dims, 2, 2, 0), 22.0);
    }

    #[test]
    fn constant_field_interior_prediction_is_exact() {
        let dims = [4, 4, 4];
        let v = dense(dims, |_, _, _| 7.0);
        // Interior: 3·7 − 3·7 + 7 = 7.
        assert_eq!(lorenzo3_predict(&v, dims, 2, 2, 2), 7.0);
    }
}
