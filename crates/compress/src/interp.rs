//! The SZ-Interp compressor: global multi-level spline interpolation
//! (Zhao et al. 2021, the paper's second algorithm).
//!
//! Unlike SZ-L/R there is no blocking: prediction sweeps the *entire*
//! volume level by level. Starting from the single stored corner value, each
//! level halves the grid stride, predicting the new points along one
//! dimension at a time with 4-point cubic interpolation
//! (weights −1/16, 9/16, 9/16, −1/16), falling back to linear/constant
//! where neighbors are missing. Residuals go through the shared
//! error-bounded quantizer; symbols through Huffman + LZSS.
//!
//! The global smooth predictor is why SZ-Interp wins on smooth fields
//! (WarpX) and why its artifacts are smooth "bumps"/faulted geometry rather
//! than blocks (paper §4).

use amrviz_codec::{
    huffman_decode_into, huffman_encode_into, lzss_compress_into, lzss_decompress_into,
    DecodeBudget,
};
use amrviz_par::scratch;

use crate::field::{Field3View, FieldMut};
use crate::quantizer::{QuantStats, Quantized, Quantizer};
use crate::wire::{ByteReader, ByteWriter};
use crate::{CompressError, Compressor, ErrorBound};

/// Magic byte identifying an SZ-Interp stream.
const MAGIC: u8 = 0xA2;

/// SZ-Interp compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct SzInterp;

/// 4-point cubic interpolation at the midpoint of the central interval.
#[inline]
fn cubic(a: f64, b: f64, c: f64, d: f64) -> f64 {
    (-a + 9.0 * b + 9.0 * c - d) * (1.0 / 16.0)
}

/// One predicted position during a sweep.
#[derive(Clone, Copy)]
struct Site {
    idx: usize,
    pred: f64,
}

/// Visits every site of one full interpolation schedule in a fixed order,
/// computing the prediction from the current reconstruction buffer and
/// handing it to `visit`, which returns the reconstructed value to store.
///
/// Shared by compressor and decompressor so the traversal can never drift
/// out of sync.
fn sweep(recon: FieldMut<'_>, mut visit: impl FnMut(Site) -> f64) {
    let [nx, ny, nz] = recon.dims;
    let recon = recon.data;
    let idx = |i: usize, j: usize, k: usize| i + nx * (j + ny * k);
    let max_dim = nx.max(ny).max(nz);
    if max_dim <= 1 {
        return;
    }
    let mut s = max_dim.next_power_of_two() / 2;
    while s >= 1 {
        let s2 = 2 * s;
        // Predict along an axis: positions `t = s, 3s, 5s, …` on lines where
        // the other coordinates are already known at this level.
        // Neighbors along the axis sit at t−3s, t−s, t+s, t+3s.
        let predict_line = |recon: &[f64], n: usize, t: usize, at: &dyn Fn(usize) -> usize| {
            let vm1 = recon[at(t - s)];
            let p1 = t + s;
            if p1 >= n {
                return vm1; // constant extension
            }
            let vp1 = recon[at(p1)];
            let m3 = t as isize - 3 * s as isize;
            let p3 = t + 3 * s;
            if m3 >= 0 && p3 < n {
                cubic(recon[at(m3 as usize)], vm1, vp1, recon[at(p3)])
            } else {
                0.5 * (vm1 + vp1)
            }
        };

        // Pass 1: interpolate along x on the (2s, 2s) coarse lattice.
        for k in (0..nz).step_by(s2) {
            for j in (0..ny).step_by(s2) {
                for i in (s..nx).step_by(s2) {
                    let at = |t: usize| idx(t, j, k);
                    let pred = predict_line(recon, nx, i, &at);
                    recon[idx(i, j, k)] = visit(Site {
                        idx: idx(i, j, k),
                        pred,
                    });
                }
            }
        }
        // Pass 2: along y; x is now known at stride s.
        for k in (0..nz).step_by(s2) {
            for j in (s..ny).step_by(s2) {
                for i in (0..nx).step_by(s) {
                    let at = |t: usize| idx(i, t, k);
                    let pred = predict_line(recon, ny, j, &at);
                    recon[idx(i, j, k)] = visit(Site {
                        idx: idx(i, j, k),
                        pred,
                    });
                }
            }
        }
        // Pass 3: along z; x and y known at stride s.
        for k in (s..nz).step_by(s2) {
            for j in (0..ny).step_by(s) {
                for i in (0..nx).step_by(s) {
                    let at = |t: usize| idx(i, j, t);
                    let pred = predict_line(recon, nz, k, &at);
                    recon[idx(i, j, k)] = visit(Site {
                        idx: idx(i, j, k),
                        pred,
                    });
                }
            }
        }
        s /= 2;
    }
}

impl Compressor for SzInterp {
    fn name(&self) -> &'static str {
        "SZ-Itp"
    }

    fn compress_into(&self, field: Field3View<'_>, bound: ErrorBound, out: &mut Vec<u8>) {
        let mut sp = amrviz_obs::span!("szitp.compress", values = field.len());
        let start_len = out.len();
        let dims = field.dims;
        let n = field.len();
        let eb = {
            let e = bound.to_abs(field.range());
            if e > 0.0 {
                e
            } else {
                1e-300
            }
        };
        let q = Quantizer::new(eb);
        let mut qstats = QuantStats::default();

        // Working buffers are rented per worker thread, not allocated per
        // field.
        let mut recon = scratch::take_f64();
        recon.resize(n, 0.0);
        recon[0] = field.data[0]; // corner anchor, stored raw
        let mut codes = scratch::take_u32();
        codes.reserve(n);
        let mut outliers = scratch::take_f64();

        sweep(FieldMut::new(dims, &mut recon), |site| {
            let actual = field.data[site.idx];
            let quantized = q.quantize(site.pred, actual);
            qstats.tally(&quantized);
            match quantized {
                Quantized::Code { code, recon } => {
                    codes.push(code);
                    recon
                }
                Quantized::Outlier => {
                    codes.push(0);
                    outliers.push(actual);
                    actual
                }
            }
        });

        scratch::give_f64(recon);

        let mut w = ByteWriter::from_vec(std::mem::take(out));
        w.u8(MAGIC);
        w.uvarint(dims[0] as u64);
        w.uvarint(dims[1] as u64);
        w.uvarint(dims[2] as u64);
        w.f64(eb);
        w.f64(field.data[0]);
        let mut huff = scratch::take_bytes();
        huffman_encode_into(&codes, &mut huff);
        let mut lz = scratch::take_bytes();
        lzss_compress_into(&huff, &mut lz);
        w.section(&lz);
        scratch::give_bytes(lz);
        scratch::give_bytes(huff);
        scratch::give_u32(codes);
        let mut outlier_bytes = scratch::take_bytes();
        outlier_bytes.reserve(outliers.len() * 8);
        for v in &outliers {
            outlier_bytes.extend_from_slice(&v.to_le_bytes());
        }
        w.section(&outlier_bytes);
        scratch::give_bytes(outlier_bytes);
        scratch::give_f64(outliers);
        *out = w.finish();
        qstats.report();
        sp.add_field("bytes_out", out.len() - start_len);
    }

    fn decompress_into(
        &self,
        bytes: &[u8],
        budget: &DecodeBudget,
        out: &mut Vec<f64>,
    ) -> Result<[usize; 3], CompressError> {
        let _sp = amrviz_obs::span!("szitp.decompress", bytes_in = bytes.len());
        let mut r = ByteReader::with_budget(bytes, *budget);
        if r.u8()? != MAGIC {
            return Err(CompressError::Malformed("bad SZ-Interp magic".into()));
        }
        let ([nx, ny, nz], n) = r.dims3()?;
        let eb = r.f64()?;
        let anchor = r.f64()?;
        if eb.is_nan() || eb <= 0.0 {
            return Err(CompressError::Malformed("bad SZ-Interp header".into()));
        }
        let q = Quantizer::new(eb);

        let mut lz = scratch::take_bytes();
        lzss_decompress_into(r.section()?, budget, &mut lz)?;
        let mut codes = scratch::take_u32();
        huffman_decode_into(&lz, budget, &mut codes)?;
        scratch::give_bytes(lz);
        if codes.len() != n - 1 {
            return Err(CompressError::Malformed(format!(
                "expected {} codes, found {}",
                n - 1,
                codes.len()
            )));
        }
        let outlier_section = r.section()?;
        if outlier_section.len() % 8 != 0 {
            return Err(CompressError::Malformed("ragged outlier section".into()));
        }
        // Outliers stream straight out of the borrowed section — no copy.
        let mut outlier_iter = outlier_section
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")));

        out.clear();
        out.resize(n, 0.0);
        out[0] = anchor;
        let mut code_pos = 0usize;
        let mut missing_outlier = false;
        sweep(FieldMut::new([nx, ny, nz], out), |site| {
            let code = codes[code_pos];
            code_pos += 1;
            if code == 0 {
                match outlier_iter.next() {
                    Some(v) => v,
                    None => {
                        missing_outlier = true;
                        0.0
                    }
                }
            } else {
                q.reconstruct(site.pred, code)
            }
        });
        scratch::give_u32(codes);
        if missing_outlier {
            return Err(CompressError::Malformed("missing outlier value".into()));
        }
        Ok([nx, ny, nz])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field3;
    use amrviz_rng::check;

    fn check_bound(orig: &Field3, recon: &Field3, eb: f64) {
        assert_eq!(orig.dims, recon.dims);
        for (n, (a, b)) in orig.data.iter().zip(&recon.data).enumerate() {
            assert!(
                (a - b).abs() <= eb * (1.0 + 1e-12),
                "bound violated at {n}: |{a} - {b}| > {eb}"
            );
        }
    }

    fn smooth_field(dims: [usize; 3]) -> Field3 {
        Field3::from_fn(dims, |i, j, k| {
            (i as f64 * 0.1).sin() * (j as f64 * 0.08).cos() * (1.0 + 0.02 * k as f64)
        })
    }

    #[test]
    fn sweep_visits_every_point_once() {
        for dims in [[8, 8, 8], [7, 5, 3], [1, 1, 9], [16, 1, 1], [2, 3, 2]] {
            let n = dims[0] * dims[1] * dims[2];
            let mut seen = vec![false; n];
            seen[0] = true; // anchor
            let mut recon = vec![0.0; n];
            sweep(FieldMut::new(dims, &mut recon), |site| {
                assert!(
                    !seen[site.idx],
                    "site {} visited twice (dims {dims:?})",
                    site.idx
                );
                seen[site.idx] = true;
                0.0
            });
            assert!(
                seen.iter().all(|&s| s),
                "not all sites visited for {dims:?}"
            );
        }
    }

    #[test]
    fn roundtrip_smooth_within_bound() {
        let f = smooth_field([20, 18, 16]);
        let sz = SzInterp;
        for rel in [1e-4, 1e-3, 1e-2] {
            let buf = sz.compress(&f, ErrorBound::Rel(rel));
            let back = sz.decompress(&buf).unwrap();
            check_bound(&f, &back, rel * f.range());
        }
    }

    #[test]
    fn beats_szlr_on_very_smooth_data() {
        use crate::szlr::SzLr;
        let f = smooth_field([32, 32, 32]);
        let itp = SzInterp.compress(&f, ErrorBound::Rel(1e-3)).len();
        let lr = SzLr::default().compress(&f, ErrorBound::Rel(1e-3)).len();
        assert!(
            itp < lr,
            "interp should win on smooth data: {itp} vs {lr} bytes"
        );
    }

    #[test]
    fn random_field_respects_bound() {
        let mut rng = amrviz_rng::Rng::seed(5);
        let f = Field3::from_fn([11, 13, 6], |_, _, _| rng.range_f64(-50.0, 50.0));
        let buf = SzInterp.compress(&f, ErrorBound::Abs(0.25));
        let back = SzInterp.decompress(&buf).unwrap();
        check_bound(&f, &back, 0.25);
    }

    #[test]
    fn degenerate_shapes() {
        for dims in [[1, 1, 1], [64, 1, 1], [1, 32, 1], [2, 2, 2], [1, 1, 128]] {
            let f = Field3::from_fn(dims, |i, j, k| (i + 2 * j + 3 * k) as f64 * 0.37);
            let buf = SzInterp.compress(&f, ErrorBound::Rel(1e-3));
            let back = SzInterp.decompress(&buf).unwrap();
            check_bound(&f, &back, 1e-3 * f.range().max(1e-300));
        }
    }

    #[test]
    fn constant_field_exact() {
        let f = Field3::new([9, 9, 9], vec![-2.5; 729]);
        let buf = SzInterp.compress(&f, ErrorBound::Rel(1e-2));
        let back = SzInterp.decompress(&buf).unwrap();
        assert_eq!(back.data, f.data);
        assert!(buf.len() < 200, "constant stream too big: {}", buf.len());
    }

    #[test]
    fn larger_bound_compresses_more() {
        let f = smooth_field([24, 24, 24]);
        let small = SzInterp.compress(&f, ErrorBound::Rel(1e-4)).len();
        let large = SzInterp.compress(&f, ErrorBound::Rel(1e-2)).len();
        assert!(large < small);
    }

    #[test]
    fn corrupt_stream_rejected() {
        let f = smooth_field([8, 8, 8]);
        let buf = SzInterp.compress(&f, ErrorBound::Rel(1e-3));
        assert!(SzInterp.decompress(&buf[..6]).is_err());
        let mut bad = buf.clone();
        bad[0] = 0x00;
        assert!(SzInterp.decompress(&bad).is_err());
    }

    #[test]
    fn bound_never_violated() {
        check(0x1CE, 16, |rng| {
            let nx = rng.range_usize(1, 13);
            let ny = rng.range_usize(1, 13);
            let nz = rng.range_usize(1, 13);
            let eb_exp = rng.range_i64(-6, -1) as i32;
            let mut field_rng = rng.fork(1);
            let f = Field3::from_fn([nx, ny, nz], |i, _, k| {
                (k as f64 * 0.2).cos() + field_rng.range_f64(-0.3, 0.3) + i as f64 * 0.05
            });
            let eb = 10f64.powi(eb_exp) * f.range().max(1e-12);
            let buf = SzInterp.compress(&f, ErrorBound::Abs(eb));
            let back = SzInterp.decompress(&buf).unwrap();
            for (a, b) in f.data.iter().zip(&back.data) {
                assert!((a - b).abs() <= eb * (1.0 + 1e-12));
            }
        });
    }
}
