//! Per-block linear regression prediction (the "R" of SZ-L/R).
//!
//! Each block fits `f(di,dj,dk) = β₀ + β₁·di + β₂·dj + β₃·dk` to the block's
//! original values by least squares. Because block offsets form a full
//! rectangular lattice, the design matrix is orthogonal after centering and
//! the fit has a cheap closed form — no linear solve needed.

/// Regression plane coefficients for one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionCoeffs {
    /// Intercept at block offset (0,0,0).
    pub b0: f64,
    /// Slopes along the block-local i/j/k offsets.
    pub b: [f64; 3],
}

impl RegressionCoeffs {
    #[inline]
    pub fn predict(&self, di: usize, dj: usize, dk: usize) -> f64 {
        self.b0 + self.b[0] * di as f64 + self.b[1] * dj as f64 + self.b[2] * dk as f64
    }
}

/// Fits the plane to `values`, the block contents in x-fastest order with
/// extents `bs = [bi, bj, bk]` (partial edge blocks allowed).
pub fn fit_block(values: &[f64], bs: [usize; 3]) -> RegressionCoeffs {
    let [bi, bj, bk] = bs;
    let n = bi * bj * bk;
    assert_eq!(values.len(), n, "block buffer mismatch");

    // Centered coordinates make the design orthogonal:
    //   β_a = Σ (x_a − x̄_a)·v / Σ (x_a − x̄_a)²   per axis,
    //   β₀' = v̄ (intercept at the centroid).
    let mean = |m: usize| (m as f64 - 1.0) / 2.0;
    let (ci, cj, ck) = (mean(bi), mean(bj), mean(bk));

    let mut sv = 0.0;
    let mut sxv = [0.0f64; 3];
    let mut idx = 0;
    for dk in 0..bk {
        for dj in 0..bj {
            for di in 0..bi {
                let v = values[idx];
                sv += v;
                sxv[0] += (di as f64 - ci) * v;
                sxv[1] += (dj as f64 - cj) * v;
                sxv[2] += (dk as f64 - ck) * v;
                idx += 1;
            }
        }
    }
    // Σ (x − x̄)² for 0..m-1 along one axis, times the count of the other
    // two axes.
    let sq = |m: usize| m as f64 * (m as f64 * m as f64 - 1.0) / 12.0;
    let denom = [
        sq(bi) * (bj * bk) as f64,
        sq(bj) * (bi * bk) as f64,
        sq(bk) * (bi * bj) as f64,
    ];
    let vbar = sv / n as f64;
    let mut b = [0.0f64; 3];
    for a in 0..3 {
        b[a] = if denom[a] > 0.0 {
            sxv[a] / denom[a]
        } else {
            0.0
        };
    }
    // Shift intercept from centroid back to offset (0,0,0).
    let b0 = vbar - b[0] * ci - b[1] * cj - b[2] * ck;
    RegressionCoeffs { b0, b }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(bs: [usize; 3], f: impl Fn(usize, usize, usize) -> f64) -> Vec<f64> {
        let mut v = Vec::new();
        for dk in 0..bs[2] {
            for dj in 0..bs[1] {
                for di in 0..bs[0] {
                    v.push(f(di, dj, dk));
                }
            }
        }
        v
    }

    #[test]
    fn exact_on_planes() {
        let bs = [6, 6, 6];
        let f =
            |i: usize, j: usize, k: usize| 1.5 + 2.0 * i as f64 - 0.5 * j as f64 + 3.0 * k as f64;
        let c = fit_block(&block(bs, f), bs);
        assert!((c.b0 - 1.5).abs() < 1e-10);
        assert!((c.b[0] - 2.0).abs() < 1e-10);
        assert!((c.b[1] + 0.5).abs() < 1e-10);
        assert!((c.b[2] - 3.0).abs() < 1e-10);
        for (idx, (dk, dj, di)) in iproduct(bs).enumerate() {
            let want = block(bs, f)[idx];
            assert!((c.predict(di, dj, dk) - want).abs() < 1e-9);
        }
    }

    fn iproduct(bs: [usize; 3]) -> impl Iterator<Item = (usize, usize, usize)> {
        (0..bs[2])
            .flat_map(move |k| (0..bs[1]).flat_map(move |j| (0..bs[0]).map(move |i| (k, j, i))))
    }

    #[test]
    fn constant_block() {
        let bs = [4, 4, 4];
        let c = fit_block(&block(bs, |_, _, _| 9.0), bs);
        assert!((c.b0 - 9.0).abs() < 1e-12);
        assert!(c.b.iter().all(|&b| b.abs() < 1e-12));
    }

    #[test]
    fn partial_edge_blocks() {
        // 6×2×1 sliver like a domain edge.
        let bs = [6, 2, 1];
        let f = |i: usize, j: usize, _: usize| i as f64 - 4.0 * j as f64;
        let c = fit_block(&block(bs, f), bs);
        assert!((c.b[0] - 1.0).abs() < 1e-10);
        assert!((c.b[1] + 4.0).abs() < 1e-10);
        assert_eq!(c.b[2], 0.0); // single-layer axis has no slope
    }

    #[test]
    fn single_cell_block() {
        let c = fit_block(&[5.5], [1, 1, 1]);
        assert_eq!(c.b0, 5.5);
        assert_eq!(c.b, [0.0; 3]);
        assert_eq!(c.predict(0, 0, 0), 5.5);
    }

    #[test]
    fn least_squares_beats_naive_on_noisy_plane() {
        // Plane + deterministic "noise"; the fit should be closer to the
        // plane than a constant predictor.
        let bs = [6, 6, 6];
        let f = |i: usize, j: usize, k: usize| {
            2.0 * i as f64
                + j as f64
                + 0.5 * k as f64
                + 0.3 * (((i * 7 + j * 13 + k * 29) % 5) as f64 - 2.0)
        };
        let vals = block(bs, f);
        let c = fit_block(&vals, bs);
        let mut sse_fit = 0.0;
        let mut sse_mean = 0.0;
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        for (idx, (dk, dj, di)) in iproduct(bs).enumerate() {
            sse_fit += (vals[idx] - c.predict(di, dj, dk)).powi(2);
            sse_mean += (vals[idx] - mean).powi(2);
        }
        assert!(sse_fit < 0.05 * sse_mean, "{sse_fit} vs {sse_mean}");
    }
}
