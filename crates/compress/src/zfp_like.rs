//! A transform-based error-bounded codec in the spirit of ZFP
//! (Lindstrom 2014) — the transform-coder family the paper's background
//! discusses alongside SZ.
//!
//! **Substitution note (see DESIGN.md):** real ZFP uses a custom integer
//! lifting transform and embedded bit-plane coding. We keep its essential
//! structure — independent 4×4×4 blocks, integer decorrelating transform,
//! entropy-coded coefficients — but use a separable 2-level Haar
//! S-transform (exactly invertible integer lifting) and the workspace's
//! Huffman+LZSS backend. The codec honors an absolute error bound by
//! pre-quantizing values with step `2·eb` (the transform itself is
//! lossless on integers).

use amrviz_codec::{
    huffman_decode_into, huffman_encode_into, lzss_compress_into, lzss_decompress_into,
    DecodeBudget,
};
use amrviz_codec::{zigzag_decode, zigzag_encode};
use amrviz_par::scratch;

use crate::field::Field3View;
use crate::wire::{ByteReader, ByteWriter};
use crate::{CompressError, Compressor, ErrorBound};

const MAGIC: u8 = 0xA3;
const BS: usize = 4;
/// Pre-quantized integers beyond this trip the block's raw escape (the
/// transform adds up to a few bits of growth; stay far from i64 range).
const MAX_Q: i64 = 1 << 45;
/// Symbol budget for the Huffman stage: coefficient codes beyond this are
/// escaped. Symbol 0 marks a raw block.
const SYM_CAP: u64 = 1 << 20;

/// Forward S-transform on a pair: `(a, b) → (⌊(a+b)/2⌋, a − b)`.
#[inline]
fn s_fwd(a: i64, b: i64) -> (i64, i64) {
    ((a + b) >> 1, a - b)
}

/// Inverse S-transform: exact integer inverse of [`s_fwd`].
#[inline]
fn s_inv(s: i64, d: i64) -> (i64, i64) {
    let a = s + ((d + 1) >> 1);
    (a, a - d)
}

/// 2-level Haar along a length-4 lane (in place): after this, lane =
/// [global avg, level-2 detail, level-1 details...].
#[inline]
fn lane_fwd(v: &mut [i64; 4]) {
    let (s0, d0) = s_fwd(v[0], v[1]);
    let (s1, d1) = s_fwd(v[2], v[3]);
    let (ss, sd) = s_fwd(s0, s1);
    *v = [ss, sd, d0, d1];
}

#[inline]
fn lane_inv(v: &mut [i64; 4]) {
    let [ss, sd, d0, d1] = *v;
    let (s0, s1) = s_inv(ss, sd);
    let (a, b) = s_inv(s0, d0);
    let (c, d) = s_inv(s1, d1);
    *v = [a, b, c, d];
}

/// Applies the lane transform along every axis of a 4×4×4 block.
fn block_fwd(block: &mut [i64; 64]) {
    for axis in 0..3 {
        apply_axis(block, axis, lane_fwd);
    }
}

fn block_inv(block: &mut [i64; 64]) {
    for axis in (0..3).rev() {
        apply_axis(block, axis, lane_inv);
    }
}

fn apply_axis(block: &mut [i64; 64], axis: usize, f: impl Fn(&mut [i64; 4])) {
    let stride = [1usize, 4, 16][axis];
    for a in 0..4 {
        for b in 0..4 {
            // Base index with the transformed axis at 0.
            let base = match axis {
                0 => 4 * a + 16 * b,
                1 => a + 16 * b,
                _ => a + 4 * b,
            };
            let mut lane = [0i64; 4];
            for (t, item) in lane.iter_mut().enumerate() {
                *item = block[base + t * stride];
            }
            f(&mut lane);
            for (t, &item) in lane.iter().enumerate() {
                block[base + t * stride] = item;
            }
        }
    }
}

/// ZFP-like fixed-accuracy compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZfpLike;

impl Compressor for ZfpLike {
    fn name(&self) -> &'static str {
        "ZFP-like"
    }

    fn compress_into(&self, field: Field3View<'_>, bound: ErrorBound, out: &mut Vec<u8>) {
        let dims = field.dims;
        let [nx, ny, nz] = dims;
        let eb = {
            let e = bound.to_abs(field.range());
            if e > 0.0 {
                e
            } else {
                1e-300
            }
        };
        let step = 2.0 * eb;
        let inv_step = 1.0 / step;

        let nb = [nx.div_ceil(BS), ny.div_ceil(BS), nz.div_ceil(BS)];
        let mut symbols = scratch::take_u32();
        symbols.reserve(field.len());
        // Escapes stay owned: there is no i64 scratch pool and the vector is
        // almost always empty (only adversarially huge coefficients land
        // here).
        let mut escapes: Vec<i64> = Vec::new();
        let mut raw = scratch::take_f64(); // raw-block values

        for bk in 0..nb[2] {
            for bj in 0..nb[1] {
                for bi in 0..nb[0] {
                    // Gather the block, edge-padding by clamping indices so
                    // partial blocks stay smooth (padding is discarded on
                    // decode).
                    let mut vals = [0.0f64; 64];
                    let mut overflow = false;
                    for dk in 0..BS {
                        for dj in 0..BS {
                            for di in 0..BS {
                                let i = (bi * BS + di).min(nx - 1);
                                let j = (bj * BS + dj).min(ny - 1);
                                let k = (bk * BS + dk).min(nz - 1);
                                let v = field.data[i + nx * (j + ny * k)];
                                vals[di + 4 * (dj + 4 * dk)] = v;
                                let q = v * inv_step;
                                if !q.is_finite() || q.abs() >= MAX_Q as f64 {
                                    overflow = true;
                                }
                            }
                        }
                    }
                    if overflow {
                        // Raw escape: symbol 0 once, then 64 raw values.
                        symbols.push(0);
                        raw.extend_from_slice(&vals);
                        continue;
                    }
                    let mut block = [0i64; 64];
                    for (q, &v) in block.iter_mut().zip(&vals) {
                        *q = (v * inv_step).round() as i64;
                    }
                    block_fwd(&mut block);
                    for &c in &block {
                        let z = zigzag_encode(c);
                        if z + 2 < SYM_CAP {
                            symbols.push((z + 2) as u32); // 0 = raw, 1 = escape
                        } else {
                            symbols.push(1);
                            escapes.push(c);
                        }
                    }
                }
            }
        }

        let mut w = ByteWriter::from_vec(std::mem::take(out));
        w.u8(MAGIC);
        w.uvarint(nx as u64);
        w.uvarint(ny as u64);
        w.uvarint(nz as u64);
        w.f64(eb);
        let mut huff = scratch::take_bytes();
        huffman_encode_into(&symbols, &mut huff);
        let mut lz = scratch::take_bytes();
        lzss_compress_into(&huff, &mut lz);
        w.section(&lz);
        scratch::give_bytes(huff);
        scratch::give_u32(symbols);
        let mut esc_bytes = scratch::take_bytes();
        esc_bytes.reserve(escapes.len() * 8);
        for &e in &escapes {
            esc_bytes.extend_from_slice(&e.to_le_bytes());
        }
        lz.clear();
        lzss_compress_into(&esc_bytes, &mut lz);
        w.section(&lz);
        scratch::give_bytes(lz);
        let mut raw_bytes = esc_bytes; // reuse the rental for the raw section
        raw_bytes.clear();
        raw_bytes.reserve(raw.len() * 8);
        for &v in &raw {
            raw_bytes.extend_from_slice(&v.to_le_bytes());
        }
        w.section(&raw_bytes);
        scratch::give_bytes(raw_bytes);
        scratch::give_f64(raw);
        *out = w.finish();
    }

    fn decompress_into(
        &self,
        bytes: &[u8],
        budget: &DecodeBudget,
        out: &mut Vec<f64>,
    ) -> Result<[usize; 3], CompressError> {
        let mut r = ByteReader::with_budget(bytes, *budget);
        if r.u8()? != MAGIC {
            return Err(CompressError::Malformed("bad ZFP-like magic".into()));
        }
        let ([nx, ny, nz], n) = r.dims3()?;
        let eb = r.f64()?;
        if eb.is_nan() || eb <= 0.0 {
            return Err(CompressError::Malformed("bad ZFP-like header".into()));
        }
        let step = 2.0 * eb;
        let mut lz = scratch::take_bytes();
        lzss_decompress_into(r.section()?, budget, &mut lz)?;
        let symbols = {
            let mut s = scratch::take_u32();
            huffman_decode_into(&lz, budget, &mut s)?;
            s
        };
        let mut esc_bytes = scratch::take_bytes();
        lzss_decompress_into(r.section()?, budget, &mut esc_bytes)?;
        scratch::give_bytes(lz);
        let mut escapes = esc_bytes
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")));
        let raw_section = r.section()?;
        let mut raws = raw_section
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")));

        let nb = [nx.div_ceil(BS), ny.div_ceil(BS), nz.div_ceil(BS)];
        out.clear();
        out.resize(n, 0.0);
        let mut sym = symbols.iter().copied();
        let mut next_sym = || {
            sym.next()
                .ok_or(CompressError::Malformed("symbol underrun".into()))
        };

        for bk in 0..nb[2] {
            for bj in 0..nb[1] {
                for bi in 0..nb[0] {
                    let first = next_sym()?;
                    let mut vals = [0.0f64; 64];
                    if first == 0 {
                        for v in vals.iter_mut() {
                            *v = raws
                                .next()
                                .ok_or(CompressError::Malformed("raw-block underrun".into()))?;
                        }
                    } else {
                        let mut block = [0i64; 64];
                        let mut fill = |sym: u32| -> Result<i64, CompressError> {
                            if sym == 1 {
                                escapes
                                    .next()
                                    .ok_or(CompressError::Malformed("escape underrun".into()))
                            } else {
                                Ok(zigzag_decode(sym as u64 - 2))
                            }
                        };
                        block[0] = fill(first)?;
                        for item in block.iter_mut().skip(1) {
                            let s = next_sym()?;
                            if s == 0 {
                                return Err(CompressError::Malformed(
                                    "raw marker mid-block".into(),
                                ));
                            }
                            *item = fill(s)?;
                        }
                        block_inv(&mut block);
                        for (v, &q) in vals.iter_mut().zip(&block) {
                            *v = q as f64 * step;
                        }
                    }
                    for dk in 0..BS {
                        for dj in 0..BS {
                            for di in 0..BS {
                                let (i, j, k) = (bi * BS + di, bj * BS + dj, bk * BS + dk);
                                if i < nx && j < ny && k < nz {
                                    out[i + nx * (j + ny * k)] = vals[di + 4 * (dj + 4 * dk)];
                                }
                            }
                        }
                    }
                }
            }
        }
        scratch::give_u32(symbols);
        scratch::give_bytes(esc_bytes);
        Ok([nx, ny, nz])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field3;
    use amrviz_rng::check;

    #[test]
    fn s_transform_inverts_exactly() {
        for a in -10i64..10 {
            for b in -10i64..10 {
                let (s, d) = s_fwd(a, b);
                assert_eq!(s_inv(s, d), (a, b));
            }
        }
    }

    #[test]
    fn lane_roundtrip() {
        let cases = [
            [0i64, 0, 0, 0],
            [1, 2, 3, 4],
            [-7, 13, -2, 900],
            [i64::MIN / 4; 4],
        ];
        for c in cases {
            let mut v = c;
            lane_fwd(&mut v);
            lane_inv(&mut v);
            assert_eq!(v, c);
        }
    }

    #[test]
    fn block_roundtrip() {
        let mut block = [0i64; 64];
        for (n, b) in block.iter_mut().enumerate() {
            *b = (n as i64 * 37 - 1000) % 271;
        }
        let orig = block;
        block_fwd(&mut block);
        assert_ne!(block, orig, "transform should change coefficients");
        block_inv(&mut block);
        assert_eq!(block, orig);
    }

    #[test]
    fn haar_decorrelates_smooth_lane() {
        // A linear ramp should concentrate energy in the average slot.
        let mut v = [100i64, 102, 104, 106];
        lane_fwd(&mut v);
        assert_eq!(v[0], 103); // mean-ish
        assert!(v[2].abs() <= 2 && v[3].abs() <= 2);
    }

    fn check_bound(orig: &Field3, recon: &Field3, eb: f64) {
        for (a, b) in orig.data.iter().zip(&recon.data) {
            assert!((a - b).abs() <= eb * (1.0 + 1e-12), "|{a}-{b}| > {eb}");
        }
    }

    #[test]
    fn roundtrip_smooth_within_bound() {
        let f = Field3::from_fn([17, 12, 9], |i, j, k| {
            (i as f64 * 0.3).sin() + (j as f64 * 0.2).cos() * k as f64 * 0.1
        });
        for rel in [1e-4, 1e-2] {
            let buf = ZfpLike.compress(&f, ErrorBound::Rel(rel));
            let back = ZfpLike.decompress(&buf).unwrap();
            check_bound(&f, &back, rel * f.range());
        }
    }

    #[test]
    fn compresses_smooth_data() {
        let f = Field3::from_fn([32, 32, 32], |i, j, k| ((i + j + k) as f64 * 0.05).sin());
        let buf = ZfpLike.compress(&f, ErrorBound::Rel(1e-3));
        let ratio = f.nbytes() as f64 / buf.len() as f64;
        assert!(ratio > 8.0, "ratio {ratio:.1}");
    }

    #[test]
    fn huge_values_escape_to_raw_blocks() {
        let f = Field3::from_fn([8, 8, 8], |i, _, _| if i == 0 { 1e300 } else { 1.0 });
        let buf = ZfpLike.compress(&f, ErrorBound::Abs(1e-6));
        let back = ZfpLike.decompress(&buf).unwrap();
        check_bound(&f, &back, 1e-6);
    }

    #[test]
    fn corrupt_stream_rejected() {
        let f = Field3::from_fn([8, 8, 8], |i, _, _| i as f64);
        let buf = ZfpLike.compress(&f, ErrorBound::Abs(0.01));
        assert!(ZfpLike.decompress(&buf[..5]).is_err());
    }

    #[test]
    fn bound_never_violated() {
        check(0x2F9, 12, |rng| {
            let nx = rng.range_usize(1, 10);
            let ny = rng.range_usize(1, 10);
            let nz = rng.range_usize(1, 10);
            let mut field_rng = rng.fork(1);
            let f = Field3::from_fn([nx, ny, nz], |_, _, _| field_rng.range_f64(-10.0, 10.0));
            let eb = 0.05;
            let buf = ZfpLike.compress(&f, ErrorBound::Abs(eb));
            let back = ZfpLike.decompress(&buf).unwrap();
            for (a, b) in f.data.iter().zip(&back.data) {
                assert!((a - b).abs() <= eb * (1.0 + 1e-12));
            }
        });
    }
}
