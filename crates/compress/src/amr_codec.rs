//! AMR-aware compression: applying a field compressor level-by-level to a
//! patch-based hierarchy.
//!
//! Each fab (one box of one level) is compressed as an independent 3D field,
//! exactly how in-situ AMR compression operates on AMReX data (one dataset
//! per level, paper §2.2). A relative error bound is resolved against the
//! *global* value range across all levels so every level honors the same
//! absolute bound.
//!
//! The paper notes that the redundant coarse data underneath fine patches
//! "is frequently not used during post-analysis and visualization … one can
//! omit this redundant data during the compression process to enhance the
//! compression ratio." [`AmrCodecConfig::skip_redundant`] implements that
//! the way TAC does: each coarse fab is decomposed into the rectangular
//! pieces *not* covered by the finer level and only those pieces are
//! encoded (the covered cells decode to zero).
//! [`AmrCodecConfig::restore_redundant`] rebuilds the omitted cells after
//! decoding by conservative restriction from the decompressed finer level —
//! which is what keeps the dual-cell visualization method (which *needs*
//! the redundant data) functional.

use amrviz_amr::{
    prolong_trilinear, rasterize_into, restrict_average, AmrHierarchy, Fab, MultiFab,
};
use amrviz_codec::{fnv1a_64, DecodeBudget};

use crate::field::Field3View;
use crate::wire::{ByteReader, ByteWriter};
use crate::{CompressError, Compressor, ErrorBound};
use amrviz_par::scratch;

/// Magic byte opening a serialized [`CompressedHierarchyField`] container
/// (v2 and later). v1 streams had no magic — they began directly with the
/// `f64` error bound — and are still accepted by
/// [`CompressedHierarchyField::from_bytes`].
pub const CONTAINER_MAGIC: u8 = 0xC3;

/// Current container wire version. v2 added the magic/version preamble and
/// a per-blob FNV-1a checksum.
pub const CONTAINER_VERSION: u8 = 2;

/// Options for hierarchy compression.
#[derive(Debug, Clone, Copy, Default)]
pub struct AmrCodecConfig {
    /// Blank out redundant coarse data before compression (higher ratio;
    /// the redundant cells decode to a constant).
    pub skip_redundant: bool,
    /// After decompression, rebuild redundant coarse cells by restriction
    /// (averaging) from the decompressed finer level.
    pub restore_redundant: bool,
}

/// A compressed hierarchy field: one blob per (fab, piece) per level, plus
/// enough metadata to report sizes and verify integrity. Use
/// [`decompress_hierarchy_field`] with the same hierarchy structure to
/// decode.
#[derive(Debug, Clone)]
pub struct CompressedHierarchyField {
    /// `blobs[level][piece]`.
    pub blobs: Vec<Vec<Vec<u8>>>,
    /// FNV-1a checksum of each blob, aligned with `blobs`. Verified before
    /// each blob is decompressed; a mismatch is a per-fab decode failure.
    pub checksums: Vec<Vec<u64>>,
    /// The absolute error bound every level was encoded with.
    pub abs_eb: f64,
    /// Number of scalar values across all levels.
    pub n_values: usize,
}

impl CompressedHierarchyField {
    /// Builds the struct from blobs, computing checksums.
    pub fn from_blobs(blobs: Vec<Vec<Vec<u8>>>, abs_eb: f64, n_values: usize) -> Self {
        let checksums = blobs
            .iter()
            .map(|level| level.iter().map(|b| fnv1a_64(b)).collect())
            .collect();
        CompressedHierarchyField {
            blobs,
            checksums,
            abs_eb,
            n_values,
        }
    }

    /// Total compressed payload size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.blobs
            .iter()
            .flat_map(|level| level.iter().map(Vec::len))
            .sum()
    }

    /// Serializes to the v2 container:
    ///
    /// ```text
    /// u8 CONTAINER_MAGIC (0xC3), u8 CONTAINER_VERSION (2),
    /// f64 abs_eb, uvarint n_values, uvarint n_levels,
    /// per level: uvarint n_blobs,
    ///   per blob: u64le fnv1a checksum, uvarint len, bytes
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(CONTAINER_MAGIC);
        w.u8(CONTAINER_VERSION);
        w.f64(self.abs_eb);
        w.uvarint(self.n_values as u64);
        w.uvarint(self.blobs.len() as u64);
        for (level, sums) in self.blobs.iter().zip(&self.checksums) {
            w.uvarint(level.len() as u64);
            for (blob, &sum) in level.iter().zip(sums) {
                w.u64_le(sum);
                w.section(blob);
            }
        }
        w.finish()
    }

    /// Inverse of [`CompressedHierarchyField::to_bytes`], with the default
    /// (permissive) [`DecodeBudget`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CompressError> {
        Self::from_bytes_budgeted(bytes, &DecodeBudget::default())
    }

    /// Parses a serialized container, validating every declared count
    /// against `budget` and the remaining input before allocation.
    ///
    /// Accepts both wire versions: v2 (magic `0xC3`, version 2, per-blob
    /// checksums) and the legacy v1 layout (no magic, no checksums — the
    /// stream opens directly with the `f64` bound). For v1, checksums are
    /// computed from the parsed blobs so downstream verification passes
    /// trivially. A v1 stream whose first bytes collide with the v2 magic
    /// is still recovered by falling back to a v1 parse when the v2 parse
    /// fails. Parsing is structural only — a blob with a wrong checksum is
    /// parsed fine here and surfaces later, per-fab, during decode (which
    /// is what lets [`DecodePolicy::Degrade`] repair it).
    pub fn from_bytes_budgeted(bytes: &[u8], budget: &DecodeBudget) -> Result<Self, CompressError> {
        if bytes.len() >= 2 && bytes[0] == CONTAINER_MAGIC {
            if bytes[1] == CONTAINER_VERSION {
                return match Self::parse_v2(bytes, budget) {
                    Ok(s) => Ok(s),
                    // Could be a v1 stream that happens to open with the
                    // magic bytes; give it one chance before reporting the
                    // v2 error.
                    Err(v2_err) => Self::parse_v1(bytes, budget).map_err(|_| v2_err),
                };
            }
            // Magic with an unknown version: a future format — unless it's
            // a colliding v1 stream, which still parses.
            return Self::parse_v1(bytes, budget).map_err(|_| {
                CompressError::Malformed(format!(
                    "unsupported container version {} (expected {})",
                    bytes[1], CONTAINER_VERSION
                ))
            });
        }
        Self::parse_v1(bytes, budget)
    }

    fn parse_v2(bytes: &[u8], budget: &DecodeBudget) -> Result<Self, CompressError> {
        let mut r = ByteReader::with_budget(bytes, *budget);
        r.u8()?; // magic
        r.u8()?; // version
        let abs_eb = r.f64()?;
        let n_values = budget.check_values(r.uvarint()? as usize)?;
        let nlev = r.uvarint()? as usize;
        // Each level costs at least one byte (its blob count).
        if nlev > r.remaining() {
            return Err(CompressError::Malformed(
                "level count exceeds stream".into(),
            ));
        }
        let mut blobs = Vec::with_capacity(nlev);
        let mut checksums = Vec::with_capacity(nlev);
        for _ in 0..nlev {
            let nblob = r.uvarint()? as usize;
            // Each blob costs at least 9 bytes (checksum + length prefix).
            if nblob > r.remaining() / 9 {
                return Err(CompressError::Malformed("blob count exceeds stream".into()));
            }
            let mut level = Vec::with_capacity(nblob);
            let mut sums = Vec::with_capacity(nblob);
            for _ in 0..nblob {
                sums.push(r.u64_le()?);
                // Owned copy is required: blobs live in the returned
                // `CompressedHierarchyField`, which outlives `bytes`.
                level.push(r.section()?.to_vec());
            }
            blobs.push(level);
            checksums.push(sums);
        }
        if r.remaining() != 0 {
            return Err(CompressError::Malformed(
                "trailing bytes after container".into(),
            ));
        }
        Ok(CompressedHierarchyField {
            blobs,
            checksums,
            abs_eb,
            n_values,
        })
    }

    fn parse_v1(bytes: &[u8], budget: &DecodeBudget) -> Result<Self, CompressError> {
        let mut r = ByteReader::with_budget(bytes, *budget);
        let abs_eb = r.f64()?;
        let n_values = budget.check_values(r.uvarint()? as usize)?;
        let nlev = r.uvarint()? as usize;
        if nlev > r.remaining() {
            return Err(CompressError::Malformed(
                "level count exceeds stream".into(),
            ));
        }
        let mut blobs = Vec::with_capacity(nlev);
        for _ in 0..nlev {
            let nfab = r.uvarint()? as usize;
            // Each blob costs at least one byte (its length prefix).
            if nfab > r.remaining() {
                return Err(CompressError::Malformed("blob count exceeds stream".into()));
            }
            let mut level = Vec::with_capacity(nfab);
            for _ in 0..nfab {
                // Owned copy required, as in `parse_v2`.
                level.push(r.section()?.to_vec());
            }
            blobs.push(level);
        }
        if r.remaining() != 0 {
            return Err(CompressError::Malformed(
                "trailing bytes after container".into(),
            ));
        }
        Ok(Self::from_blobs(blobs, abs_eb, n_values))
    }
}

/// Compresses one named field of a hierarchy.
pub fn compress_hierarchy_field(
    hier: &AmrHierarchy,
    field: &str,
    compressor: &dyn Compressor,
    bound: ErrorBound,
    cfg: &AmrCodecConfig,
) -> Result<CompressedHierarchyField, CompressError> {
    let amr_field = hier
        .field(field)
        .map_err(|e| CompressError::Malformed(e.to_string()))?;

    // Global range across all levels → single absolute bound.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for mf in &amr_field.levels {
        let (l, h) = mf.min_max();
        lo = lo.min(l);
        hi = hi.max(h);
    }
    let abs_eb = {
        let e = bound.to_abs(hi - lo);
        if e > 0.0 {
            e
        } else {
            1e-300
        }
    };
    amrviz_obs::gauge_set("compress.abs_eb", abs_eb);

    let mut blobs = Vec::with_capacity(hier.num_levels());
    let mut n_values = 0usize;
    for (lev, mf) in amr_field.levels.iter().enumerate() {
        let mut sp = amrviz_obs::span!("compress.level", level = lev);
        // Enumerate (fab, piece) tasks, then compress them in parallel.
        let mut tasks: Vec<(usize, amrviz_amr::Box3)> = Vec::new();
        let mut level_values = 0usize;
        for (fi, fab) in mf.fabs().iter().enumerate() {
            let bx = fab.box3();
            level_values += bx.num_cells();
            for piece in encode_pieces(hier, lev, bx, cfg) {
                tasks.push((fi, piece));
            }
        }
        n_values += level_values;
        // Fan the pieces across the pool; results come back in task order,
        // so the per-level blob sequence is identical at any thread count.
        let level_blobs: Vec<Vec<u8>> = amrviz_par::run(tasks.len(), |ti| {
            let (fi, piece) = tasks[ti];
            // Gather the piece into per-thread scratch and compress straight
            // off the borrowed view — no owned sub-fab or `Field3` per piece.
            // The blob itself stays a fresh `Vec`: it outlives the task as
            // part of the returned `CompressedHierarchyField`.
            let mut vals = scratch::take_f64();
            vals.resize(piece.num_cells(), 0.0);
            mf.fabs()[fi].read_region_into(piece, &mut vals);
            // Per-piece latency + blob-size distributions. The Instant pair
            // is gated so a disabled recorder costs nothing extra here.
            let t0 = amrviz_obs::is_enabled().then(std::time::Instant::now);
            let mut blob = Vec::new();
            compressor.compress_into(
                Field3View::new(piece.size(), &vals),
                ErrorBound::Abs(abs_eb),
                &mut blob,
            );
            if let Some(t0) = t0 {
                amrviz_obs::histogram!("compress.piece_us", t0.elapsed().as_micros());
                amrviz_obs::histogram!("compress.blob_bytes", blob.len());
            }
            scratch::give_f64(vals);
            blob
        });
        let level_bytes: usize = level_blobs.iter().map(Vec::len).sum();
        amrviz_obs::counter!("compress.bytes_in", level_values * 8);
        amrviz_obs::counter!("compress.bytes_out", level_bytes);
        sp.add_field("pieces", tasks.len());
        sp.add_field("bytes_in", level_values * 8);
        sp.add_field("bytes_out", level_bytes);
        blobs.push(level_blobs);
    }
    Ok(CompressedHierarchyField::from_blobs(
        blobs, abs_eb, n_values,
    ))
}

/// The rectangular pieces of `bx` that get encoded: the whole box normally,
/// or (with `skip_redundant`) the parts not covered by the finer level.
/// Deterministic, so compressor and decompressor always agree.
fn encode_pieces(
    hier: &AmrHierarchy,
    lev: usize,
    bx: amrviz_amr::Box3,
    cfg: &AmrCodecConfig,
) -> Vec<amrviz_amr::Box3> {
    if !cfg.skip_redundant || lev + 1 >= hier.num_levels() {
        return vec![bx];
    }
    // Inward coarsening: only coarse cells whose *entire* fine-child block
    // exists may be skipped. Outward coarsening would also skip cells a
    // degenerate (unaligned 1×1×1) fine box merely touches, losing the
    // 7 uncovered children's worth of coarse data.
    let covered = hier.box_array(lev + 1).coarsen_inward(hier.ratio_at(lev));
    covered.complement_in(&bx)
}

/// How [`decompress_hierarchy_field_policy`] treats a fab blob that fails
/// its checksum or decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodePolicy {
    /// First failure aborts the decode with
    /// [`CompressError::FabDecode`] naming the level and fab.
    #[default]
    Strict,
    /// Failed fabs are reconstructed from neighbor levels — trilinear
    /// prolongation from the coarser level, or (at level 0) restriction
    /// from the finer level — and reported in the [`DecodeReport`]. Only
    /// fabs with no neighbor data at all stay zero-filled.
    Degrade,
}

/// How a degraded fab was reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairKind {
    /// Trilinear prolongation from the (already repaired) coarser level.
    Prolonged,
    /// Averaging restriction from the finer level; cells without fine
    /// coverage stay zero.
    Restricted,
}

/// Decode outcome of one fab.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabStatus {
    /// Every piece of the fab decoded and verified.
    Ok,
    /// At least one piece failed but was reconstructed from a neighbor
    /// level.
    Degraded { repair: RepairKind, cause: String },
    /// Failed and unrepairable (no neighbor level); left zero-filled.
    Failed { cause: String },
}

/// Per-fab decode outcome for one hierarchy decode.
#[derive(Debug, Clone, Default)]
pub struct DecodeReport {
    /// One entry per fab, in (level, fab index) order.
    pub fabs: Vec<(usize, usize, FabStatus)>,
}

impl DecodeReport {
    /// `(ok, degraded, failed)` fab counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for (_, _, s) in &self.fabs {
            match s {
                FabStatus::Ok => c.0 += 1,
                FabStatus::Degraded { .. } => c.1 += 1,
                FabStatus::Failed { .. } => c.2 += 1,
            }
        }
        c
    }

    /// True when every fab decoded cleanly.
    pub fn is_clean(&self) -> bool {
        let (_, d, f) = self.counts();
        d == 0 && f == 0
    }

    /// The non-ok entries, for logging.
    pub fn problems(&self) -> impl Iterator<Item = &(usize, usize, FabStatus)> {
        self.fabs.iter().filter(|(_, _, s)| *s != FabStatus::Ok)
    }
}

/// Decompresses a hierarchy field back onto the box structure of `hier`.
/// Returns one [`MultiFab`] per level. Strict policy: any bad blob is an
/// error.
pub fn decompress_hierarchy_field(
    hier: &AmrHierarchy,
    compressed: &CompressedHierarchyField,
    compressor: &dyn Compressor,
    cfg: &AmrCodecConfig,
) -> Result<Vec<MultiFab>, CompressError> {
    decompress_hierarchy_field_policy(
        hier,
        compressed,
        compressor,
        cfg,
        DecodePolicy::Strict,
        &DecodeBudget::default(),
    )
    .map(|(levels, _)| levels)
}

/// [`decompress_hierarchy_field`] with an explicit failure policy and
/// decode budget. Every blob's FNV-1a checksum is verified before it is
/// decompressed; under [`DecodePolicy::Degrade`], fabs whose blobs fail
/// checksum or decode are rebuilt from neighbor levels and the returned
/// [`DecodeReport`] says which fabs were touched and why. Structural
/// problems (wrong level/blob counts for this hierarchy) are hard errors
/// under either policy — there is nothing to degrade onto.
pub fn decompress_hierarchy_field_policy(
    hier: &AmrHierarchy,
    compressed: &CompressedHierarchyField,
    compressor: &dyn Compressor,
    cfg: &AmrCodecConfig,
    policy: DecodePolicy,
    budget: &DecodeBudget,
) -> Result<(Vec<MultiFab>, DecodeReport), CompressError> {
    let mut levels = Vec::new();
    let report = decompress_hierarchy_field_into(
        hier,
        compressed,
        compressor,
        cfg,
        policy,
        budget,
        &mut levels,
    )?;
    Ok((levels, report))
}

/// [`decompress_hierarchy_field_policy`] decoding into caller-owned level
/// storage. When `levels` already has the hierarchy's box structure (e.g.
/// from a previous decode of the same hierarchy), every fab buffer is reused
/// in place — repeated decodes allocate nothing for cell data. Structure
/// mismatches rebuild the affected level. On error, `levels` may hold a
/// partially decoded state; its contents are unspecified.
#[allow(clippy::too_many_arguments)]
pub fn decompress_hierarchy_field_into(
    hier: &AmrHierarchy,
    compressed: &CompressedHierarchyField,
    compressor: &dyn Compressor,
    cfg: &AmrCodecConfig,
    policy: DecodePolicy,
    budget: &DecodeBudget,
    levels: &mut Vec<MultiFab>,
) -> Result<DecodeReport, CompressError> {
    if compressed.blobs.len() != hier.num_levels() {
        return Err(CompressError::Malformed(format!(
            "{} levels in stream, hierarchy has {}",
            compressed.blobs.len(),
            hier.num_levels()
        )));
    }
    prepare_levels(hier, levels);
    // Failed pieces per level: (fab index, piece box, cause).
    let mut failures: Vec<Vec<(usize, amrviz_amr::Box3, String)>> =
        vec![Vec::new(); hier.num_levels()];
    for (lev, level_blobs) in compressed.blobs.iter().enumerate() {
        budget.check_deadline()?;
        let mut sp = amrviz_obs::span!("decompress.level", level = lev);
        let ba = hier.box_array(lev);
        // Reconstruct the deterministic (fab, piece) schedule. Tasks are
        // fab-major, so each fab's pieces occupy one contiguous task range —
        // which is what lets the decode fan out per *fab* below with every
        // worker writing straight into its own fab's buffer.
        let mut tasks: Vec<(usize, amrviz_amr::Box3)> = Vec::new();
        let mut fab_tasks: Vec<std::ops::Range<usize>> = Vec::with_capacity(ba.len());
        for (fi, bx) in ba.iter().enumerate() {
            let start = tasks.len();
            for piece in encode_pieces(hier, lev, *bx, cfg) {
                tasks.push((fi, piece));
            }
            fab_tasks.push(start..tasks.len());
        }
        if tasks.len() != level_blobs.len() {
            return Err(CompressError::Malformed(format!(
                "level {lev}: {} blobs for {} pieces",
                level_blobs.len(),
                tasks.len()
            )));
        }
        let sums = compressed.checksums.get(lev);
        if sums.map(Vec::len) != Some(level_blobs.len()) {
            return Err(CompressError::Malformed(format!(
                "level {lev}: checksum table does not match blob count"
            )));
        }
        let sums = sums.expect("checked above");
        // One chunk per fab: each worker decodes that fab's pieces into
        // per-thread scratch and writes them into the fab's (reused) buffer.
        // Failures land in a mutex in scheduling order and are re-sorted by
        // task index so reporting is thread-count independent.
        let failed: std::sync::Mutex<Vec<(usize, usize, amrviz_amr::Box3, String)>> =
            std::sync::Mutex::new(Vec::new());
        amrviz_par::for_each_chunk_mut(levels[lev].fabs_mut(), 1, |fi, chunk| {
            let fab = &mut chunk[0];
            for ti in fab_tasks[fi].clone() {
                let (_, piece) = tasks[ti];
                if let Err(e) =
                    decode_piece_into(compressor, &level_blobs[ti], sums[ti], piece, budget, fab)
                {
                    failed.lock().unwrap_or_else(|p| p.into_inner()).push((
                        ti,
                        fi,
                        piece,
                        e.to_string(),
                    ));
                }
            }
        });
        let mut failed = failed.into_inner().unwrap_or_else(|p| p.into_inner());
        failed.sort_by_key(|&(ti, ..)| ti);
        // A deadline breach is *not* repairable data: escalate it to a typed
        // error even under `Degrade`, so a timed-out request can never be
        // passed off as a degraded-but-served hierarchy.
        if let Some((_, fi, _, cause)) = failed
            .iter()
            .find(|(.., cause)| cause.contains(amrviz_codec::CodecError::DEADLINE_MSG))
        {
            return Err(CompressError::FabDecode {
                level: lev,
                fab: *fi,
                cause: cause.clone(),
            });
        }
        match policy {
            DecodePolicy::Strict => {
                if let Some((_, fi, _, cause)) = failed.into_iter().next() {
                    return Err(CompressError::FabDecode {
                        level: lev,
                        fab: fi,
                        cause,
                    });
                }
            }
            DecodePolicy::Degrade => {
                failures[lev] = failed
                    .into_iter()
                    .map(|(_, fi, piece, cause)| (fi, piece, cause))
                    .collect();
            }
        }
        let level_bytes: usize = level_blobs.iter().map(Vec::len).sum();
        amrviz_obs::counter!("decompress.bytes_in", level_bytes);
        amrviz_obs::counter!("decompress.bytes_out", ba.num_cells() * 8);
        sp.add_field("pieces", tasks.len());
        sp.add_field("bytes_in", level_bytes);
    }

    // Repair pass, coarse to fine, so prolongation always reads from a
    // level that has itself been repaired already.
    let mut report = DecodeReport::default();
    for (lev, lev_failures) in failures.iter_mut().enumerate() {
        let mut fab_status: Vec<FabStatus> = vec![FabStatus::Ok; hier.box_array(lev).len()];
        for (fi, piece, cause) in lev_failures.drain(..) {
            let status = repair_piece(hier, levels, lev, piece, cause);
            // A fab with several failed pieces keeps its worst status
            // (Failed > Degraded > Ok).
            if !matches!(fab_status[fi], FabStatus::Failed { .. }) {
                fab_status[fi] = status;
            }
        }
        for (fi, status) in fab_status.into_iter().enumerate() {
            match &status {
                FabStatus::Ok => amrviz_obs::counter!("decode.fabs_ok", 1),
                FabStatus::Degraded { .. } => {
                    amrviz_obs::counter!("decode.fabs_degraded", 1)
                }
                FabStatus::Failed { .. } => amrviz_obs::counter!("decode.fabs_failed", 1),
            }
            report.fabs.push((lev, fi, status));
        }
    }

    if cfg.restore_redundant {
        let _sp = amrviz_obs::span!("decompress.restore_redundant");
        // Rebuild coarse data under fine patches from the decompressed fine
        // level (finest first so restrictions cascade downward).
        for lev in (0..hier.num_levels().saturating_sub(1)).rev() {
            let ratio = hier.ratio_at(lev);
            let (coarse_slice, fine_slice) = levels.split_at_mut(lev + 1);
            let coarse = &mut coarse_slice[lev];
            let fine = &fine_slice[0];
            for cfab in coarse.fabs_mut() {
                for ffab in fine.fabs() {
                    let fine_bx = ffab.box3();
                    // Only coarse cells with a full set of fine children can
                    // be restored by averaging; a degenerate unaligned fine
                    // box may fully cover none (its coarse parent keeps its
                    // own encoded data — `encode_pieces` never skipped it).
                    let Some(covered) = fine_bx.coarsen_inward(ratio) else {
                        continue;
                    };
                    let Some(overlap) = cfab.box3().intersect(&covered) else {
                        continue;
                    };
                    let restricted = restrict_average(ffab, overlap, ratio);
                    cfab.copy_from(&restricted);
                }
            }
        }
    }
    Ok(report)
}

/// Shapes `levels` onto the hierarchy's box structure, reusing existing fab
/// allocations when the boxes already match. Everything is zero-filled
/// either way: pieces absent from the stream (skipped redundant regions,
/// failed blobs) must decode to zero, exactly as a fresh decode would.
fn prepare_levels(hier: &AmrHierarchy, levels: &mut Vec<MultiFab>) {
    levels.truncate(hier.num_levels());
    for lev in 0..hier.num_levels() {
        let ba = hier.box_array(lev);
        match levels.get_mut(lev) {
            Some(mf)
                if mf.fabs().len() == ba.len()
                    && mf
                        .fabs()
                        .iter()
                        .zip(ba.iter())
                        .all(|(f, &bx)| f.box3() == bx) =>
            {
                for fab in mf.fabs_mut() {
                    fab.data_mut().fill(0.0);
                }
            }
            Some(mf) => *mf = MultiFab::zeros(ba),
            None => levels.push(MultiFab::zeros(ba)),
        }
    }
}

/// Verifies and decodes one piece blob into `fab` over `piece`, routing the
/// decoded values through per-thread scratch (no per-piece `Fab` or owned
/// `Field3`).
fn decode_piece_into(
    compressor: &dyn Compressor,
    blob: &[u8],
    sum: u64,
    piece: amrviz_amr::Box3,
    budget: &DecodeBudget,
    fab: &mut Fab,
) -> Result<(), CompressError> {
    if fnv1a_64(blob) != sum {
        return Err(CompressError::Malformed("blob checksum mismatch".into()));
    }
    let t0 = amrviz_obs::is_enabled().then(std::time::Instant::now);
    let mut vals = scratch::take_f64();
    let dims = match compressor.decompress_into(blob, budget, &mut vals) {
        Ok(d) => d,
        Err(e) => {
            scratch::give_f64(vals);
            return Err(e);
        }
    };
    if let Some(t0) = t0 {
        amrviz_obs::histogram!("decompress.piece_us", t0.elapsed().as_micros());
    }
    if dims != piece.size() {
        scratch::give_f64(vals);
        return Err(CompressError::Malformed(format!(
            "piece dims {:?} but box size {:?}",
            dims,
            piece.size()
        )));
    }
    fab.write_region_from(piece, &vals);
    scratch::give_f64(vals);
    Ok(())
}

/// Rebuilds one failed piece from neighbor-level data and returns the
/// resulting [`FabStatus`]. Levels below `lev` have already been repaired
/// (the caller sweeps coarse to fine), so prolongation reads best-available
/// data.
fn repair_piece(
    hier: &AmrHierarchy,
    levels: &mut [MultiFab],
    lev: usize,
    piece: amrviz_amr::Box3,
    cause: String,
) -> FabStatus {
    if lev > 0 {
        // Trilinear prolongation from the coarser level: rasterize the
        // needed coarse region dense (it may span several coarse fabs),
        // then interpolate up. Proper nesting guarantees coverage.
        let ratio = hier.ratio_at(lev - 1);
        let needed = piece.coarsen(ratio);
        let mut buf = vec![0.0f64; needed.num_cells()];
        rasterize_into(&levels[lev - 1], needed, &mut buf);
        let coarse = Fab::from_vec(needed, buf);
        let repaired = prolong_trilinear(&coarse, piece, ratio);
        for fab in levels[lev].fabs_mut() {
            fab.copy_from(&repaired);
        }
        return FabStatus::Degraded {
            repair: RepairKind::Prolonged,
            cause,
        };
    }
    if hier.num_levels() > 1 {
        // Coarsest level: averaging restriction from the finer level over
        // whatever the fine patches cover; the rest has no donor and stays
        // zero.
        let ratio = hier.ratio_at(0);
        let (coarse_slice, fine_slice) = levels.split_at_mut(1);
        let fine = &fine_slice[0];
        let mut covered_any = false;
        for cfab in coarse_slice[0].fabs_mut() {
            let Some(target) = cfab.box3().intersect(&piece) else {
                continue;
            };
            for ffab in fine.fabs() {
                let Some(overlap) = target.intersect(&ffab.box3().coarsen(ratio)) else {
                    continue;
                };
                let restricted = restrict_average(ffab, overlap, ratio);
                cfab.copy_from(&restricted);
                covered_any = true;
            }
        }
        if covered_any {
            return FabStatus::Degraded {
                repair: RepairKind::Restricted,
                cause,
            };
        }
    }
    FabStatus::Failed {
        cause: format!("{cause}; no neighbor level to repair from, zero-filled"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::SzInterp;
    use crate::szlr::SzLr;
    use amrviz_amr::{Box3, BoxArray, Geometry, IntVect};

    fn two_level_hier() -> AmrHierarchy {
        let geom = Geometry::unit(Box3::from_dims(16, 16, 16));
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain).chop_to_max_cells(1024),
                BoxArray::new(vec![Box3::new(
                    IntVect::new(8, 8, 8),
                    IntVect::new(23, 23, 23),
                )]),
            ],
        )
        .unwrap();
        h.add_field_from_fn("rho", |lev, iv| {
            let s = if lev == 0 { 1.0 } else { 0.5 };
            ((iv[0] as f64 * s * 0.3).sin() + (iv[1] as f64 * s * 0.2).cos()) * 10.0
                + iv[2] as f64 * s * 0.1
        })
        .unwrap();
        h
    }

    #[allow(clippy::needless_range_loop)]
    fn max_err(h: &AmrHierarchy, levels: &[MultiFab], skip_covered: bool) -> f64 {
        let orig = h.field("rho").unwrap();
        let mut worst = 0.0f64;
        for lev in 0..h.num_levels() {
            let covered = h.covered_mask(lev);
            for (of, df) in orig.levels[lev].fabs().iter().zip(levels[lev].fabs()) {
                for (cell, v) in of.iter() {
                    if skip_covered && covered.get(cell) {
                        continue;
                    }
                    worst = worst.max((v - df.get(cell)).abs());
                }
            }
        }
        worst
    }

    #[test]
    fn roundtrip_within_bound_all_compressors() {
        let h = two_level_hier();
        let cfg = AmrCodecConfig::default();
        let compressors: [&dyn Compressor; 2] = [&SzLr::default(), &SzInterp];
        for comp in compressors {
            let c = compress_hierarchy_field(&h, "rho", comp, ErrorBound::Rel(1e-3), &cfg).unwrap();
            let levels = decompress_hierarchy_field(&h, &c, comp, &cfg).unwrap();
            let err = max_err(&h, &levels, false);
            assert!(
                err <= c.abs_eb * (1.0 + 1e-12),
                "{}: {err} > {}",
                comp.name(),
                c.abs_eb
            );
        }
    }

    /// Larger hierarchy where the covered coarse region is big enough that
    /// omitting it outweighs per-piece stream overhead (42% covered, like
    /// the Nyx configuration in Table 1).
    fn nyx_like_hier() -> AmrHierarchy {
        let geom = Geometry::unit(Box3::from_dims(32, 32, 32));
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::new(vec![Box3::new(
                    IntVect::new(0, 0, 0),
                    IntVect::new(47, 47, 47),
                )]),
            ],
        )
        .unwrap();
        h.add_field_from_fn("rho", |lev, iv| {
            let s = if lev == 0 { 0.2 } else { 0.1 };
            (iv[0] as f64 * s).sin() * (iv[1] as f64 * s).cos() + (iv[2] as f64 * s).sin()
        })
        .unwrap();
        h
    }

    #[test]
    fn skip_redundant_improves_ratio() {
        let h = nyx_like_hier();
        let comp = SzInterp;
        let keep = compress_hierarchy_field(
            &h,
            "rho",
            &comp,
            ErrorBound::Rel(1e-4),
            &AmrCodecConfig::default(),
        )
        .unwrap();
        let skip = compress_hierarchy_field(
            &h,
            "rho",
            &comp,
            ErrorBound::Rel(1e-4),
            &AmrCodecConfig {
                skip_redundant: true,
                restore_redundant: false,
            },
        )
        .unwrap();
        assert!(
            skip.compressed_bytes() < keep.compressed_bytes(),
            "skipping redundant data should shrink the stream: {} vs {}",
            skip.compressed_bytes(),
            keep.compressed_bytes()
        );
        // And the *unique* cells still honor the bound. (Decompression must
        // use the same piece decomposition it was encoded with.)
        let skip_cfg = AmrCodecConfig {
            skip_redundant: true,
            restore_redundant: false,
        };
        let levels = decompress_hierarchy_field(&h, &skip, &comp, &skip_cfg).unwrap();
        let err = max_err(&h, &levels, true);
        assert!(err <= skip.abs_eb * (1.0 + 1e-12));
    }

    #[test]
    fn restore_redundant_rebuilds_covered_cells() {
        let h = two_level_hier();
        let comp = SzLr::default();
        let cfg = AmrCodecConfig {
            skip_redundant: true,
            restore_redundant: true,
        };
        let c = compress_hierarchy_field(&h, "rho", &comp, ErrorBound::Rel(1e-4), &cfg).unwrap();
        let levels = decompress_hierarchy_field(&h, &c, &comp, &cfg).unwrap();
        // Covered coarse cells should now approximate the restriction of the
        // original fine data (compression error + restriction difference).
        let orig_fine = &h.field("rho").unwrap().levels[1];
        let covered = h.covered_mask(0);
        let mut checked = 0;
        for dfab in levels[0].fabs() {
            for (cell, got) in dfab.iter() {
                if !covered.get(cell) {
                    continue;
                }
                // Expected: average of the 8 original fine children.
                let base = cell.refine(2);
                let mut want = 0.0;
                for dz in 0..2 {
                    for dy in 0..2 {
                        for dx in 0..2 {
                            want += orig_fine
                                .value_at(base + IntVect::new(dx, dy, dz))
                                .expect("covered cell has fine children");
                        }
                    }
                }
                want /= 8.0;
                assert!(
                    (got - want).abs() <= c.abs_eb * (1.0 + 1e-9),
                    "restored cell {cell:?}: {got} vs {want}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no covered cells checked");
    }

    #[test]
    fn decode_into_reuses_fab_storage_and_matches_fresh() {
        let h = two_level_hier();
        let comp = SzLr::default();
        let cfg = AmrCodecConfig::default();
        let c = compress_hierarchy_field(&h, "rho", &comp, ErrorBound::Rel(1e-3), &cfg).unwrap();
        let fresh = decompress_hierarchy_field(&h, &c, &comp, &cfg).unwrap();

        // Seed `levels` with a decode, note every fab's buffer address, then
        // decode again into the same storage.
        let mut levels = Vec::new();
        decompress_hierarchy_field_into(
            &h,
            &c,
            &comp,
            &cfg,
            DecodePolicy::Strict,
            &DecodeBudget::default(),
            &mut levels,
        )
        .unwrap();
        let ptrs: Vec<*const f64> = levels
            .iter()
            .flat_map(|mf| mf.fabs().iter().map(|f| f.data().as_ptr()))
            .collect();
        let report = decompress_hierarchy_field_into(
            &h,
            &c,
            &comp,
            &cfg,
            DecodePolicy::Strict,
            &DecodeBudget::default(),
            &mut levels,
        )
        .unwrap();
        assert!(report.is_clean());
        let ptrs2: Vec<*const f64> = levels
            .iter()
            .flat_map(|mf| mf.fabs().iter().map(|f| f.data().as_ptr()))
            .collect();
        assert_eq!(ptrs, ptrs2, "second decode must reuse every fab buffer");
        assert_eq!(
            levels, fresh,
            "reused-storage decode must match a fresh one"
        );
    }

    #[test]
    fn serialized_form_roundtrips() {
        let h = two_level_hier();
        let comp = SzInterp;
        let cfg = AmrCodecConfig::default();
        let c = compress_hierarchy_field(&h, "rho", &comp, ErrorBound::Rel(1e-3), &cfg).unwrap();
        let bytes = c.to_bytes();
        let back = CompressedHierarchyField::from_bytes(&bytes).unwrap();
        assert_eq!(back.abs_eb, c.abs_eb);
        assert_eq!(back.n_values, c.n_values);
        assert_eq!(back.blobs, c.blobs);
        let levels = decompress_hierarchy_field(&h, &back, &comp, &cfg).unwrap();
        assert_eq!(levels.len(), 2);
    }

    #[test]
    fn clean_decode_reports_all_ok() {
        let h = two_level_hier();
        let comp = SzInterp;
        let cfg = AmrCodecConfig::default();
        let c = compress_hierarchy_field(&h, "rho", &comp, ErrorBound::Rel(1e-3), &cfg).unwrap();
        let (_, report) = decompress_hierarchy_field_policy(
            &h,
            &c,
            &comp,
            &cfg,
            DecodePolicy::Degrade,
            &DecodeBudget::default(),
        )
        .unwrap();
        assert!(report.is_clean());
        let (ok, _, _) = report.counts();
        assert_eq!(ok, report.fabs.len());
    }

    #[test]
    fn strict_policy_names_failing_fab() {
        let h = two_level_hier();
        let comp = SzInterp;
        let cfg = AmrCodecConfig::default();
        let mut c =
            compress_hierarchy_field(&h, "rho", &comp, ErrorBound::Rel(1e-3), &cfg).unwrap();
        // Flip one byte inside the fine level's blob; the stored checksum
        // no longer matches.
        let mid = c.blobs[1][0].len() / 2;
        c.blobs[1][0][mid] ^= 0xFF;
        let err = decompress_hierarchy_field_policy(
            &h,
            &c,
            &comp,
            &cfg,
            DecodePolicy::Strict,
            &DecodeBudget::default(),
        )
        .unwrap_err();
        match err {
            CompressError::FabDecode { level, fab, cause } => {
                assert_eq!((level, fab), (1, 0));
                assert!(cause.contains("checksum"), "unexpected cause: {cause}");
            }
            other => panic!("expected FabDecode, got {other}"),
        }
    }

    #[test]
    fn degrade_policy_repairs_corrupt_fine_fab_by_prolongation() {
        let h = two_level_hier();
        let comp = SzInterp;
        let cfg = AmrCodecConfig::default();
        let mut c =
            compress_hierarchy_field(&h, "rho", &comp, ErrorBound::Rel(1e-3), &cfg).unwrap();
        let mid = c.blobs[1][0].len() / 2;
        c.blobs[1][0][mid] ^= 0xFF;
        let (levels, report) = decompress_hierarchy_field_policy(
            &h,
            &c,
            &comp,
            &cfg,
            DecodePolicy::Degrade,
            &DecodeBudget::default(),
        )
        .unwrap();
        let (_, degraded, failed) = report.counts();
        assert_eq!(degraded, 1, "exactly the corrupted fab degrades");
        assert_eq!(failed, 0);
        let (lev, fab, status) = report.problems().next().unwrap();
        assert_eq!((*lev, *fab), (1, 0));
        assert!(matches!(
            status,
            FabStatus::Degraded {
                repair: RepairKind::Prolonged,
                ..
            }
        ));
        // The repaired fab approximates the true fine data via trilinear
        // prolongation of the (smooth) coarse field — far better than the
        // zero fill it would otherwise be.
        let orig_fine = &h.field("rho").unwrap().levels[1];
        let mut worst = 0.0f64;
        for (of, df) in orig_fine.fabs().iter().zip(levels[1].fabs()) {
            for (cell, v) in of.iter() {
                worst = worst.max((v - df.get(cell)).abs());
            }
        }
        let amplitude = 20.0; // field spans roughly ±20
        assert!(
            worst < amplitude / 5.0,
            "prolonged repair too far off: {worst}"
        );
    }

    #[test]
    fn degrade_policy_restricts_corrupt_coarse_fab() {
        // nyx_like_hier: the fine patch covers part of the coarse domain;
        // restriction repairs exactly those cells, the rest has no donor.
        let h = nyx_like_hier();
        let comp = SzInterp;
        let cfg = AmrCodecConfig::default();
        let mut c =
            compress_hierarchy_field(&h, "rho", &comp, ErrorBound::Rel(1e-4), &cfg).unwrap();
        let mid = c.blobs[0][0].len() / 2;
        c.blobs[0][0][mid] ^= 0xFF;
        let (levels, report) = decompress_hierarchy_field_policy(
            &h,
            &c,
            &comp,
            &cfg,
            DecodePolicy::Degrade,
            &DecodeBudget::default(),
        )
        .unwrap();
        let (_, degraded, failed) = report.counts();
        assert_eq!((degraded, failed), (1, 0));
        let (lev, _, status) = report.problems().next().unwrap();
        assert_eq!(*lev, 0);
        assert!(matches!(
            status,
            FabStatus::Degraded {
                repair: RepairKind::Restricted,
                ..
            }
        ));
        // Restricted coarse values approximate the original coarse data on
        // every cell the fine level covers.
        let orig = &h.field("rho").unwrap().levels[0];
        let covered = h.covered_mask(0);
        let mut worst = 0.0f64;
        let mut n_checked = 0usize;
        for (of, df) in orig.fabs().iter().zip(levels[0].fabs()) {
            for (cell, v) in of.iter() {
                if !covered.get(cell) {
                    continue;
                }
                worst = worst.max((v - df.get(cell)).abs());
                n_checked += 1;
            }
        }
        assert!(n_checked > 0);
        assert!(worst < 0.5, "restricted repair too far off: {worst}");
    }

    #[test]
    fn single_level_corruption_is_reported_failed() {
        let geom = Geometry::unit(Box3::from_dims(8, 8, 8));
        let mut h = AmrHierarchy::new(geom, vec![], vec![BoxArray::single(geom.domain)]).unwrap();
        h.add_field_from_fn("rho", |_, iv| iv[0] as f64).unwrap();
        let comp = SzInterp;
        let cfg = AmrCodecConfig::default();
        let mut c =
            compress_hierarchy_field(&h, "rho", &comp, ErrorBound::Rel(1e-3), &cfg).unwrap();
        let mid = c.blobs[0][0].len() / 2;
        c.blobs[0][0][mid] ^= 0xFF;
        let (_, report) = decompress_hierarchy_field_policy(
            &h,
            &c,
            &comp,
            &cfg,
            DecodePolicy::Degrade,
            &DecodeBudget::default(),
        )
        .unwrap();
        let (_, degraded, failed) = report.counts();
        assert_eq!((degraded, failed), (0, 1), "no neighbor level exists");
    }

    #[test]
    fn v2_container_detects_checksum_mismatch_after_roundtrip() {
        let h = two_level_hier();
        let comp = SzInterp;
        let cfg = AmrCodecConfig::default();
        let c = compress_hierarchy_field(&h, "rho", &comp, ErrorBound::Rel(1e-3), &cfg).unwrap();
        let mut bytes = c.to_bytes();
        assert_eq!(bytes[0], CONTAINER_MAGIC);
        assert_eq!(bytes[1], CONTAINER_VERSION);
        // Corrupt a byte near the end (inside the last blob's payload).
        let at = bytes.len() - 8;
        bytes[at] ^= 0x01;
        // Structural parse still succeeds — integrity is per-blob.
        let back = CompressedHierarchyField::from_bytes(&bytes).unwrap();
        let err = decompress_hierarchy_field(&h, &back, &comp, &cfg).unwrap_err();
        assert!(matches!(err, CompressError::FabDecode { .. }), "got {err}");
    }

    #[test]
    fn legacy_v1_stream_still_decodes() {
        let h = two_level_hier();
        let comp = SzInterp;
        let cfg = AmrCodecConfig::default();
        let c = compress_hierarchy_field(&h, "rho", &comp, ErrorBound::Rel(1e-3), &cfg).unwrap();
        // Serialize by hand in the v1 layout (no magic, no checksums).
        let mut w = ByteWriter::new();
        w.f64(c.abs_eb);
        w.uvarint(c.n_values as u64);
        w.uvarint(c.blobs.len() as u64);
        for level in &c.blobs {
            w.uvarint(level.len() as u64);
            for blob in level {
                w.section(blob);
            }
        }
        let v1 = w.finish();
        let back = CompressedHierarchyField::from_bytes(&v1).unwrap();
        assert_eq!(back.abs_eb, c.abs_eb);
        assert_eq!(back.blobs, c.blobs);
        assert_eq!(back.checksums, c.checksums, "v1 checksums recomputed");
        let levels = decompress_hierarchy_field(&h, &back, &comp, &cfg).unwrap();
        assert_eq!(levels.len(), 2);
    }

    #[test]
    fn unknown_container_version_rejected_clearly() {
        let h = two_level_hier();
        let comp = SzInterp;
        let cfg = AmrCodecConfig::default();
        let c = compress_hierarchy_field(&h, "rho", &comp, ErrorBound::Rel(1e-3), &cfg).unwrap();
        let mut bytes = c.to_bytes();
        bytes[1] = 99;
        let err = CompressedHierarchyField::from_bytes(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("unsupported container version"),
            "got: {err}"
        );
    }

    #[test]
    fn unknown_field_is_error() {
        let h = two_level_hier();
        let res = compress_hierarchy_field(
            &h,
            "nope",
            &SzInterp,
            ErrorBound::Rel(1e-3),
            &AmrCodecConfig::default(),
        );
        assert!(res.is_err());
    }
}
