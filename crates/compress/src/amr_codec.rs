//! AMR-aware compression: applying a field compressor level-by-level to a
//! patch-based hierarchy.
//!
//! Each fab (one box of one level) is compressed as an independent 3D field,
//! exactly how in-situ AMR compression operates on AMReX data (one dataset
//! per level, paper §2.2). A relative error bound is resolved against the
//! *global* value range across all levels so every level honors the same
//! absolute bound.
//!
//! The paper notes that the redundant coarse data underneath fine patches
//! "is frequently not used during post-analysis and visualization … one can
//! omit this redundant data during the compression process to enhance the
//! compression ratio." [`AmrCodecConfig::skip_redundant`] implements that
//! the way TAC does: each coarse fab is decomposed into the rectangular
//! pieces *not* covered by the finer level and only those pieces are
//! encoded (the covered cells decode to zero).
//! [`AmrCodecConfig::restore_redundant`] rebuilds the omitted cells after
//! decoding by conservative restriction from the decompressed finer level —
//! which is what keeps the dual-cell visualization method (which *needs*
//! the redundant data) functional.

use amrviz_amr::{restrict_average, AmrHierarchy, Fab, MultiFab};

use crate::field::Field3;
use crate::wire::{ByteReader, ByteWriter};
use crate::{CompressError, Compressor, ErrorBound};

/// Options for hierarchy compression.
#[derive(Debug, Clone, Copy, Default)]
pub struct AmrCodecConfig {
    /// Blank out redundant coarse data before compression (higher ratio;
    /// the redundant cells decode to a constant).
    pub skip_redundant: bool,
    /// After decompression, rebuild redundant coarse cells by restriction
    /// (averaging) from the decompressed finer level.
    pub restore_redundant: bool,
}

/// A compressed hierarchy field: one blob per fab per level, plus enough
/// metadata to report sizes. Use [`decompress_hierarchy_field`] with the
/// same hierarchy structure to decode.
#[derive(Debug, Clone)]
pub struct CompressedHierarchyField {
    /// `blobs[level][fab]`.
    pub blobs: Vec<Vec<Vec<u8>>>,
    /// The absolute error bound every level was encoded with.
    pub abs_eb: f64,
    /// Number of scalar values across all levels.
    pub n_values: usize,
}

impl CompressedHierarchyField {
    /// Total compressed payload size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.blobs
            .iter()
            .flat_map(|level| level.iter().map(Vec::len))
            .sum()
    }

    /// Serializes all blobs into one buffer (levels/fabs length-prefixed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.f64(self.abs_eb);
        w.uvarint(self.n_values as u64);
        w.uvarint(self.blobs.len() as u64);
        for level in &self.blobs {
            w.uvarint(level.len() as u64);
            for blob in level {
                w.section(blob);
            }
        }
        w.finish()
    }

    /// Inverse of [`CompressedHierarchyField::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CompressError> {
        let mut r = ByteReader::new(bytes);
        let abs_eb = r.f64()?;
        let n_values = r.uvarint()? as usize;
        let nlev = r.uvarint()? as usize;
        let mut blobs = Vec::with_capacity(nlev);
        for _ in 0..nlev {
            let nfab = r.uvarint()? as usize;
            let mut level = Vec::with_capacity(nfab);
            for _ in 0..nfab {
                level.push(r.section()?.to_vec());
            }
            blobs.push(level);
        }
        Ok(CompressedHierarchyField { blobs, abs_eb, n_values })
    }
}

/// Compresses one named field of a hierarchy.
pub fn compress_hierarchy_field(
    hier: &AmrHierarchy,
    field: &str,
    compressor: &dyn Compressor,
    bound: ErrorBound,
    cfg: &AmrCodecConfig,
) -> Result<CompressedHierarchyField, CompressError> {
    let amr_field = hier
        .field(field)
        .map_err(|e| CompressError::Malformed(e.to_string()))?;

    // Global range across all levels → single absolute bound.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for mf in &amr_field.levels {
        let (l, h) = mf.min_max();
        lo = lo.min(l);
        hi = hi.max(h);
    }
    let abs_eb = {
        let e = bound.to_abs(hi - lo);
        if e > 0.0 { e } else { 1e-300 }
    };
    amrviz_obs::gauge_set("compress.abs_eb", abs_eb);

    let mut blobs = Vec::with_capacity(hier.num_levels());
    let mut n_values = 0usize;
    for (lev, mf) in amr_field.levels.iter().enumerate() {
        let mut sp = amrviz_obs::span!("compress.level", level = lev);
        // Enumerate (fab, piece) tasks, then compress them in parallel.
        let mut tasks: Vec<(usize, amrviz_amr::Box3)> = Vec::new();
        let mut level_values = 0usize;
        for (fi, fab) in mf.fabs().iter().enumerate() {
            let bx = fab.box3();
            level_values += bx.num_cells();
            for piece in encode_pieces(hier, lev, bx, cfg) {
                tasks.push((fi, piece));
            }
        }
        n_values += level_values;
        // Fan the pieces across the pool; results come back in task order,
        // so the per-level blob sequence is identical at any thread count.
        let level_blobs: Vec<Vec<u8>> = amrviz_par::run(tasks.len(), |ti| {
            let (fi, piece) = tasks[ti];
            let sub = mf.fabs()[fi].subfab(piece);
            let field3 = Field3::new(piece.size(), sub.into_vec());
            compressor.compress(&field3, ErrorBound::Abs(abs_eb))
        });
        let level_bytes: usize = level_blobs.iter().map(Vec::len).sum();
        amrviz_obs::counter!("compress.bytes_in", level_values * 8);
        amrviz_obs::counter!("compress.bytes_out", level_bytes);
        sp.add_field("pieces", tasks.len());
        sp.add_field("bytes_in", level_values * 8);
        sp.add_field("bytes_out", level_bytes);
        blobs.push(level_blobs);
    }
    Ok(CompressedHierarchyField { blobs, abs_eb, n_values })
}

/// The rectangular pieces of `bx` that get encoded: the whole box normally,
/// or (with `skip_redundant`) the parts not covered by the finer level.
/// Deterministic, so compressor and decompressor always agree.
fn encode_pieces(
    hier: &AmrHierarchy,
    lev: usize,
    bx: amrviz_amr::Box3,
    cfg: &AmrCodecConfig,
) -> Vec<amrviz_amr::Box3> {
    if !cfg.skip_redundant || lev + 1 >= hier.num_levels() {
        return vec![bx];
    }
    let covered = hier.box_array(lev + 1).coarsen(hier.ratio_at(lev));
    covered.complement_in(&bx)
}

/// Decompresses a hierarchy field back onto the box structure of `hier`.
/// Returns one [`MultiFab`] per level.
pub fn decompress_hierarchy_field(
    hier: &AmrHierarchy,
    compressed: &CompressedHierarchyField,
    compressor: &dyn Compressor,
    cfg: &AmrCodecConfig,
) -> Result<Vec<MultiFab>, CompressError> {
    if compressed.blobs.len() != hier.num_levels() {
        return Err(CompressError::Malformed(format!(
            "{} levels in stream, hierarchy has {}",
            compressed.blobs.len(),
            hier.num_levels()
        )));
    }
    let mut levels: Vec<MultiFab> = Vec::with_capacity(hier.num_levels());
    for (lev, level_blobs) in compressed.blobs.iter().enumerate() {
        let mut sp = amrviz_obs::span!("decompress.level", level = lev);
        let ba = hier.box_array(lev);
        // Reconstruct the deterministic (fab, piece) schedule, then decode
        // all pieces in parallel.
        let mut tasks: Vec<(usize, amrviz_amr::Box3)> = Vec::new();
        for (fi, bx) in ba.iter().enumerate() {
            for piece in encode_pieces(hier, lev, *bx, cfg) {
                tasks.push((fi, piece));
            }
        }
        if tasks.len() != level_blobs.len() {
            return Err(CompressError::Malformed(format!(
                "level {lev}: {} blobs for {} pieces",
                level_blobs.len(),
                tasks.len()
            )));
        }
        let decoded: Vec<Result<Fab, CompressError>> =
            amrviz_par::run(tasks.len(), |ti| {
                let (_, piece) = tasks[ti];
                let blob = &level_blobs[ti];
                let field3 = compressor.decompress(blob)?;
                if field3.dims != piece.size() {
                    return Err(CompressError::Malformed(format!(
                        "piece dims {:?} but box size {:?}",
                        field3.dims,
                        piece.size()
                    )));
                }
                Ok(Fab::from_vec(piece, field3.data))
            });
        let mut fabs: Vec<Fab> = ba.iter().map(|&bx| Fab::zeros(bx)).collect();
        for (&(fi, _), piece_fab) in tasks.iter().zip(decoded) {
            fabs[fi].copy_from(&piece_fab?);
        }
        let level_bytes: usize = level_blobs.iter().map(Vec::len).sum();
        amrviz_obs::counter!("decompress.bytes_in", level_bytes);
        amrviz_obs::counter!("decompress.bytes_out", ba.num_cells() * 8);
        sp.add_field("pieces", tasks.len());
        sp.add_field("bytes_in", level_bytes);
        levels.push(MultiFab::from_fabs(fabs));
    }

    if cfg.restore_redundant {
        let _sp = amrviz_obs::span!("decompress.restore_redundant");
        // Rebuild coarse data under fine patches from the decompressed fine
        // level (finest first so restrictions cascade downward).
        for lev in (0..hier.num_levels().saturating_sub(1)).rev() {
            let ratio = hier.ratio_at(lev);
            let (coarse_slice, fine_slice) = levels.split_at_mut(lev + 1);
            let coarse = &mut coarse_slice[lev];
            let fine = &fine_slice[0];
            for cfab in coarse.fabs_mut() {
                for ffab in fine.fabs() {
                    let fine_bx = ffab.box3();
                    // Only fully-refinable overlap (fine boxes are aligned).
                    let Some(overlap) = cfab.box3().intersect(&fine_bx.coarsen(ratio))
                    else {
                        continue;
                    };
                    let restricted = restrict_average(ffab, overlap, ratio);
                    cfab.copy_from(&restricted);
                }
            }
        }
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::szlr::SzLr;
    use crate::interp::SzInterp;
    use amrviz_amr::{Box3, BoxArray, Geometry, IntVect};

    fn two_level_hier() -> AmrHierarchy {
        let geom = Geometry::unit(Box3::from_dims(16, 16, 16));
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain).chop_to_max_cells(1024),
                BoxArray::new(vec![Box3::new(
                    IntVect::new(8, 8, 8),
                    IntVect::new(23, 23, 23),
                )]),
            ],
        )
        .unwrap();
        h.add_field_from_fn("rho", |lev, iv| {
            let s = if lev == 0 { 1.0 } else { 0.5 };
            ((iv[0] as f64 * s * 0.3).sin() + (iv[1] as f64 * s * 0.2).cos()) * 10.0
                + iv[2] as f64 * s * 0.1
        })
        .unwrap();
        h
    }

    #[allow(clippy::needless_range_loop)]
    fn max_err(h: &AmrHierarchy, levels: &[MultiFab], skip_covered: bool) -> f64 {
        let orig = h.field("rho").unwrap();
        let mut worst = 0.0f64;
        for lev in 0..h.num_levels() {
            let covered = h.covered_mask(lev);
            for (of, df) in orig.levels[lev].fabs().iter().zip(levels[lev].fabs()) {
                for (cell, v) in of.iter() {
                    if skip_covered && covered.get(cell) {
                        continue;
                    }
                    worst = worst.max((v - df.get(cell)).abs());
                }
            }
        }
        worst
    }

    #[test]
    fn roundtrip_within_bound_all_compressors() {
        let h = two_level_hier();
        let cfg = AmrCodecConfig::default();
        let compressors: [&dyn Compressor; 2] = [&SzLr::default(), &SzInterp];
        for comp in compressors {
            let c =
                compress_hierarchy_field(&h, "rho", comp, ErrorBound::Rel(1e-3), &cfg)
                    .unwrap();
            let levels = decompress_hierarchy_field(&h, &c, comp, &cfg).unwrap();
            let err = max_err(&h, &levels, false);
            assert!(err <= c.abs_eb * (1.0 + 1e-12), "{}: {err} > {}", comp.name(), c.abs_eb);
        }
    }

    /// Larger hierarchy where the covered coarse region is big enough that
    /// omitting it outweighs per-piece stream overhead (42% covered, like
    /// the Nyx configuration in Table 1).
    fn nyx_like_hier() -> AmrHierarchy {
        let geom = Geometry::unit(Box3::from_dims(32, 32, 32));
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::new(vec![Box3::new(
                    IntVect::new(0, 0, 0),
                    IntVect::new(47, 47, 47),
                )]),
            ],
        )
        .unwrap();
        h.add_field_from_fn("rho", |lev, iv| {
            let s = if lev == 0 { 0.2 } else { 0.1 };
            (iv[0] as f64 * s).sin() * (iv[1] as f64 * s).cos() + (iv[2] as f64 * s).sin()
        })
        .unwrap();
        h
    }

    #[test]
    fn skip_redundant_improves_ratio() {
        let h = nyx_like_hier();
        let comp = SzInterp;
        let keep = compress_hierarchy_field(
            &h,
            "rho",
            &comp,
            ErrorBound::Rel(1e-4),
            &AmrCodecConfig::default(),
        )
        .unwrap();
        let skip = compress_hierarchy_field(
            &h,
            "rho",
            &comp,
            ErrorBound::Rel(1e-4),
            &AmrCodecConfig { skip_redundant: true, restore_redundant: false },
        )
        .unwrap();
        assert!(
            skip.compressed_bytes() < keep.compressed_bytes(),
            "skipping redundant data should shrink the stream: {} vs {}",
            skip.compressed_bytes(),
            keep.compressed_bytes()
        );
        // And the *unique* cells still honor the bound. (Decompression must
        // use the same piece decomposition it was encoded with.)
        let skip_cfg = AmrCodecConfig { skip_redundant: true, restore_redundant: false };
        let levels = decompress_hierarchy_field(&h, &skip, &comp, &skip_cfg).unwrap();
        let err = max_err(&h, &levels, true);
        assert!(err <= skip.abs_eb * (1.0 + 1e-12));
    }

    #[test]
    fn restore_redundant_rebuilds_covered_cells() {
        let h = two_level_hier();
        let comp = SzLr::default();
        let cfg = AmrCodecConfig { skip_redundant: true, restore_redundant: true };
        let c = compress_hierarchy_field(&h, "rho", &comp, ErrorBound::Rel(1e-4), &cfg)
            .unwrap();
        let levels = decompress_hierarchy_field(&h, &c, &comp, &cfg).unwrap();
        // Covered coarse cells should now approximate the restriction of the
        // original fine data (compression error + restriction difference).
        let orig_fine = &h.field("rho").unwrap().levels[1];
        let covered = h.covered_mask(0);
        let mut checked = 0;
        for dfab in levels[0].fabs() {
            for (cell, got) in dfab.iter() {
                if !covered.get(cell) {
                    continue;
                }
                // Expected: average of the 8 original fine children.
                let base = cell.refine(2);
                let mut want = 0.0;
                for dz in 0..2 {
                    for dy in 0..2 {
                        for dx in 0..2 {
                            want += orig_fine
                                .value_at(base + IntVect::new(dx, dy, dz))
                                .expect("covered cell has fine children");
                        }
                    }
                }
                want /= 8.0;
                assert!(
                    (got - want).abs() <= c.abs_eb * (1.0 + 1e-9),
                    "restored cell {cell:?}: {got} vs {want}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no covered cells checked");
    }

    #[test]
    fn serialized_form_roundtrips() {
        let h = two_level_hier();
        let comp = SzInterp;
        let cfg = AmrCodecConfig::default();
        let c = compress_hierarchy_field(&h, "rho", &comp, ErrorBound::Rel(1e-3), &cfg)
            .unwrap();
        let bytes = c.to_bytes();
        let back = CompressedHierarchyField::from_bytes(&bytes).unwrap();
        assert_eq!(back.abs_eb, c.abs_eb);
        assert_eq!(back.n_values, c.n_values);
        assert_eq!(back.blobs, c.blobs);
        let levels = decompress_hierarchy_field(&h, &back, &comp, &cfg).unwrap();
        assert_eq!(levels.len(), 2);
    }

    #[test]
    fn unknown_field_is_error() {
        let h = two_level_hier();
        let res = compress_hierarchy_field(
            &h,
            "nope",
            &SzInterp,
            ErrorBound::Rel(1e-3),
            &AmrCodecConfig::default(),
        );
        assert!(res.is_err());
    }
}
