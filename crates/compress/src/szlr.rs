//! The SZ-L/R compressor: block-wise Lorenzo / linear-regression prediction
//! with error-bounded quantization (Liang et al. 2018, as used by the
//! paper's §3.3).
//!
//! The volume is partitioned into `block_size³` blocks (6³ by default,
//! matching the paper). Each block independently selects the predictor with
//! the smaller estimated total error:
//!
//! * **Lorenzo** — 3D first-order corner predictor on previously
//!   reconstructed values; shares information across block boundaries.
//! * **Regression** — a least-squares plane fitted to the block's original
//!   values; fully local, which is what gives SZ-L/R random access and its
//!   "block-wise" artifact structure at large error bounds.
//!
//! Stream layout (after the common header): predictor-selection bits,
//! regression coefficients (`f32`×4 per regression block), Huffman+LZSS
//! coded quantization symbols, raw outlier values.

use amrviz_codec::{
    huffman_decode_into, huffman_encode_into, lzss_compress_into, lzss_decompress_into,
    DecodeBudget,
};
use amrviz_codec::{BitReader, BitWriter};
use amrviz_par::scratch;

use crate::field::Field3View;
use crate::lorenzo::lorenzo3_predict;
use crate::quantizer::{QuantStats, Quantized, Quantizer};
use crate::regression::{fit_block, RegressionCoeffs};
use crate::wire::{ByteReader, ByteWriter};
use crate::{CompressError, Compressor, ErrorBound};

/// Magic byte identifying an SZ-L/R stream.
const MAGIC: u8 = 0xA1;

/// Which predictors a block may choose — `Hybrid` is the real SZ-L/R;
/// the single-predictor modes exist for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorMode {
    /// Per-block choice between Lorenzo and regression (the paper's SZ-L/R).
    #[default]
    Hybrid,
    /// Force the Lorenzo predictor everywhere.
    LorenzoOnly,
    /// Force the regression predictor everywhere.
    RegressionOnly,
}

/// SZ-L/R compressor configuration.
#[derive(Debug, Clone, Copy)]
pub struct SzLr {
    /// Edge length of prediction blocks (paper: 6).
    pub block_size: usize,
    /// Predictor selection policy.
    pub mode: PredictorMode,
}

impl Default for SzLr {
    fn default() -> Self {
        SzLr {
            block_size: 6,
            mode: PredictorMode::Hybrid,
        }
    }
}

impl SzLr {
    /// Ablation constructor: Lorenzo predictor only.
    pub fn lorenzo_only() -> Self {
        SzLr {
            mode: PredictorMode::LorenzoOnly,
            ..Default::default()
        }
    }

    /// Ablation constructor: regression predictor only.
    pub fn regression_only() -> Self {
        SzLr {
            mode: PredictorMode::RegressionOnly,
            ..Default::default()
        }
    }
}

/// Effective absolute bound; degenerate (zero) bounds get a tiny positive
/// stand-in so the quantizer is well-defined (constant fields then encode
/// as all-zero residuals).
fn effective_eb(bound: ErrorBound, range: f64) -> f64 {
    let eb = bound.to_abs(range);
    if eb > 0.0 {
        eb
    } else {
        1e-300
    }
}

/// Per-block predictor choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pred {
    Lorenzo,
    Regression,
}

impl SzLr {
    fn block_extents(&self, dims: [usize; 3]) -> [usize; 3] {
        [
            dims[0].div_ceil(self.block_size),
            dims[1].div_ceil(self.block_size),
            dims[2].div_ceil(self.block_size),
        ]
    }

    /// Estimates which predictor fits a block better, comparing summed
    /// absolute prediction errors. The Lorenzo estimate uses *original*
    /// neighbors — the standard SZ approximation, cheap and adequate for
    /// selection.
    fn select_predictor(
        &self,
        data: &[f64],
        dims: [usize; 3],
        base: [usize; 3],
        ext: [usize; 3],
        coeffs: &RegressionCoeffs,
    ) -> Pred {
        match self.mode {
            PredictorMode::LorenzoOnly => return Pred::Lorenzo,
            PredictorMode::RegressionOnly => return Pred::Regression,
            PredictorMode::Hybrid => {}
        }
        let mut err_lorenzo = 0.0;
        let mut err_reg = 0.0;
        let [nx, ny, _] = dims;
        for dk in 0..ext[2] {
            for dj in 0..ext[1] {
                for di in 0..ext[0] {
                    let (i, j, k) = (base[0] + di, base[1] + dj, base[2] + dk);
                    let actual = data[i + nx * (j + ny * k)];
                    err_lorenzo += (lorenzo3_predict(data, dims, i, j, k) - actual).abs();
                    err_reg += (coeffs.predict(di, dj, dk) - actual).abs();
                }
            }
        }
        if err_reg < err_lorenzo {
            Pred::Regression
        } else {
            Pred::Lorenzo
        }
    }
}

impl Compressor for SzLr {
    fn name(&self) -> &'static str {
        "SZ-L/R"
    }

    fn compress_into(&self, field: Field3View<'_>, bound: ErrorBound, out: &mut Vec<u8>) {
        let mut sp = amrviz_obs::span!("szlr.compress", values = field.len());
        let start_len = out.len();
        let dims = field.dims;
        let [nx, ny, nz] = dims;
        let n = field.len();
        let eb = effective_eb(bound, field.range());
        let q = Quantizer::new(eb);
        let mut qstats = QuantStats::default();
        let bs = self.block_size;
        let nblocks = self.block_extents(dims);

        // All working state is rented from the per-thread scratch pool, so
        // a worker compressing many boxes allocates these once, not per box.
        let mut recon = scratch::take_f64();
        recon.resize(n, 0.0);
        let mut codes = scratch::take_u32();
        codes.reserve(n);
        let mut outliers = scratch::take_f64();
        let mut pred_bits = BitWriter::with_buffer(scratch::take_bytes());
        let mut coeff_bytes = ByteWriter::from_vec(scratch::take_bytes());

        let mut block_vals = scratch::take_f64();
        block_vals.reserve(bs * bs * bs);
        for bk in 0..nblocks[2] {
            for bj in 0..nblocks[1] {
                for bi in 0..nblocks[0] {
                    let base = [bi * bs, bj * bs, bk * bs];
                    let ext = [
                        bs.min(nx - base[0]),
                        bs.min(ny - base[1]),
                        bs.min(nz - base[2]),
                    ];
                    // Gather block and fit the regression plane.
                    block_vals.clear();
                    for dk in 0..ext[2] {
                        for dj in 0..ext[1] {
                            for di in 0..ext[0] {
                                let (i, j, k) = (base[0] + di, base[1] + dj, base[2] + dk);
                                block_vals.push(field.data[i + nx * (j + ny * k)]);
                            }
                        }
                    }
                    let coeffs = fit_block(&block_vals, ext);
                    let pred_kind = self.select_predictor(field.data, dims, base, ext, &coeffs);
                    pred_bits.write_bit(pred_kind == Pred::Regression);

                    // Decompressor sees f32 coefficients; predict with the
                    // same rounded values to stay in sync.
                    let c32 = if pred_kind == Pred::Regression {
                        let c = RegressionCoeffs {
                            b0: coeffs.b0 as f32 as f64,
                            b: [
                                coeffs.b[0] as f32 as f64,
                                coeffs.b[1] as f32 as f64,
                                coeffs.b[2] as f32 as f64,
                            ],
                        };
                        coeff_bytes.f32(coeffs.b0 as f32);
                        coeff_bytes.f32(coeffs.b[0] as f32);
                        coeff_bytes.f32(coeffs.b[1] as f32);
                        coeff_bytes.f32(coeffs.b[2] as f32);
                        Some(c)
                    } else {
                        None
                    };

                    for dk in 0..ext[2] {
                        for dj in 0..ext[1] {
                            for di in 0..ext[0] {
                                let (i, j, k) = (base[0] + di, base[1] + dj, base[2] + dk);
                                let idx = i + nx * (j + ny * k);
                                let pred = match &c32 {
                                    Some(c) => c.predict(di, dj, dk),
                                    None => lorenzo3_predict(&recon, dims, i, j, k),
                                };
                                let actual = field.data[idx];
                                let quantized = q.quantize(pred, actual);
                                qstats.tally(&quantized);
                                match quantized {
                                    Quantized::Code { code, recon: r } => {
                                        codes.push(code);
                                        recon[idx] = r;
                                    }
                                    Quantized::Outlier => {
                                        codes.push(0);
                                        outliers.push(actual);
                                        recon[idx] = actual;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        scratch::give_f64(block_vals);

        // Assemble the stream directly onto the caller's buffer; the
        // entropy stages run through rented intermediates.
        let mut w = ByteWriter::from_vec(std::mem::take(out));
        w.u8(MAGIC);
        w.uvarint(nx as u64);
        w.uvarint(ny as u64);
        w.uvarint(nz as u64);
        w.f64(eb);
        w.uvarint(bs as u64);
        let pred = pred_bits.finish();
        w.section(&pred);
        scratch::give_bytes(pred);
        let coeff = coeff_bytes.finish();
        w.section(&coeff);
        scratch::give_bytes(coeff);
        let mut huff = scratch::take_bytes();
        huffman_encode_into(&codes, &mut huff);
        let mut lz = scratch::take_bytes();
        lzss_compress_into(&huff, &mut lz);
        w.section(&lz);
        scratch::give_bytes(lz);
        scratch::give_bytes(huff);
        scratch::give_u32(codes);
        scratch::give_f64(recon);
        let mut outlier_bytes = scratch::take_bytes();
        outlier_bytes.reserve(outliers.len() * 8);
        for v in &outliers {
            outlier_bytes.extend_from_slice(&v.to_le_bytes());
        }
        w.section(&outlier_bytes);
        scratch::give_bytes(outlier_bytes);
        scratch::give_f64(outliers);
        *out = w.finish();
        qstats.report();
        sp.add_field("bytes_out", out.len() - start_len);
    }

    fn decompress_into(
        &self,
        bytes: &[u8],
        budget: &DecodeBudget,
        out: &mut Vec<f64>,
    ) -> Result<[usize; 3], CompressError> {
        let _sp = amrviz_obs::span!("szlr.decompress", bytes_in = bytes.len());
        let mut r = ByteReader::with_budget(bytes, *budget);
        if r.u8()? != MAGIC {
            return Err(CompressError::Malformed("bad SZ-L/R magic".into()));
        }
        let ([nx, ny, nz], n) = r.dims3()?;
        let eb = r.f64()?;
        let bs = r.uvarint()? as usize;
        if bs == 0 || eb.is_nan() || eb <= 0.0 {
            return Err(CompressError::Malformed("bad SZ-L/R header".into()));
        }
        let dims = [nx, ny, nz];
        let q = Quantizer::new(eb);

        // Section slices borrow the input stream directly (`ByteReader`
        // hands back `&[u8]` tied to `bytes`), so nothing here is copied.
        let pred_section = r.section()?;
        let coeff_section = r.section()?;
        let mut lz = scratch::take_bytes();
        lzss_decompress_into(r.section()?, budget, &mut lz)?;
        let mut codes = scratch::take_u32();
        huffman_decode_into(&lz, budget, &mut codes)?;
        scratch::give_bytes(lz);
        if codes.len() != n {
            return Err(CompressError::Malformed(format!(
                "expected {n} codes, found {}",
                codes.len()
            )));
        }
        let outlier_section = r.section()?;
        if outlier_section.len() % 8 != 0 {
            return Err(CompressError::Malformed("ragged outlier section".into()));
        }
        // Outliers stream straight out of the borrowed section.
        let mut outlier_iter = outlier_section
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")));

        let mut pred_bits = BitReader::new(pred_section);
        let mut coeffs_r = ByteReader::new(coeff_section);
        out.clear();
        out.resize(n, 0.0);
        let recon = &mut out[..];
        let mut code_pos = 0usize;
        let nblocks = self.block_extents_for(dims, bs);

        for bk in 0..nblocks[2] {
            for bj in 0..nblocks[1] {
                for bi in 0..nblocks[0] {
                    let base = [bi * bs, bj * bs, bk * bs];
                    let ext = [
                        bs.min(nx - base[0]),
                        bs.min(ny - base[1]),
                        bs.min(nz - base[2]),
                    ];
                    let is_reg = pred_bits.read_bit()?;
                    let c = if is_reg {
                        Some(RegressionCoeffs {
                            b0: coeffs_r.f32()? as f64,
                            b: [
                                coeffs_r.f32()? as f64,
                                coeffs_r.f32()? as f64,
                                coeffs_r.f32()? as f64,
                            ],
                        })
                    } else {
                        None
                    };
                    for dk in 0..ext[2] {
                        for dj in 0..ext[1] {
                            for di in 0..ext[0] {
                                let (i, j, k) = (base[0] + di, base[1] + dj, base[2] + dk);
                                let idx = i + nx * (j + ny * k);
                                let pred = match &c {
                                    Some(c) => c.predict(di, dj, dk),
                                    None => lorenzo3_predict(recon, dims, i, j, k),
                                };
                                let code = codes[code_pos];
                                code_pos += 1;
                                recon[idx] = if code == 0 {
                                    outlier_iter.next().ok_or_else(|| {
                                        CompressError::Malformed("missing outlier".into())
                                    })?
                                } else {
                                    q.reconstruct(pred, code)
                                };
                            }
                        }
                    }
                }
            }
        }
        scratch::give_u32(codes);
        Ok(dims)
    }
}

impl SzLr {
    fn block_extents_for(&self, dims: [usize; 3], bs: usize) -> [usize; 3] {
        [
            dims[0].div_ceil(bs),
            dims[1].div_ceil(bs),
            dims[2].div_ceil(bs),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field3;
    use amrviz_rng::check;

    fn check_bound(orig: &Field3, recon: &Field3, eb: f64) {
        assert_eq!(orig.dims, recon.dims);
        for (a, b) in orig.data.iter().zip(&recon.data) {
            assert!(
                (a - b).abs() <= eb * (1.0 + 1e-12),
                "bound violated: |{a} - {b}| > {eb}"
            );
        }
    }

    fn smooth_field(dims: [usize; 3]) -> Field3 {
        Field3::from_fn(dims, |i, j, k| {
            (i as f64 * 0.2).sin() * (j as f64 * 0.15).cos() + 0.05 * k as f64
        })
    }

    #[test]
    fn roundtrip_smooth_within_bound() {
        let f = smooth_field([20, 18, 16]);
        let sz = SzLr::default();
        for rel in [1e-4, 1e-3, 1e-2] {
            let buf = sz.compress(&f, ErrorBound::Rel(rel));
            let back = sz.decompress(&buf).unwrap();
            check_bound(&f, &back, rel * f.range());
        }
    }

    #[test]
    fn compresses_smooth_data_well() {
        let f = smooth_field([32, 32, 32]);
        let sz = SzLr::default();
        let buf = sz.compress(&f, ErrorBound::Rel(1e-3));
        let ratio = f.nbytes() as f64 / buf.len() as f64;
        assert!(ratio > 15.0, "ratio too low: {ratio:.1}");
    }

    #[test]
    fn constant_field_is_tiny_and_exact() {
        let f = Field3::new([16, 16, 16], vec![3.25; 4096]);
        let sz = SzLr::default();
        let buf = sz.compress(&f, ErrorBound::Rel(1e-3));
        assert!(
            buf.len() < 600,
            "constant field stream too big: {}",
            buf.len()
        );
        let back = sz.decompress(&buf).unwrap();
        assert_eq!(back.data, f.data);
    }

    #[test]
    fn random_field_respects_bound() {
        let mut rng = amrviz_rng::Rng::seed(11);
        let f = Field3::from_fn([13, 9, 7], |_, _, _| rng.range_f64(-100.0, 100.0));
        let sz = SzLr::default();
        let buf = sz.compress(&f, ErrorBound::Abs(0.5));
        let back = sz.decompress(&buf).unwrap();
        check_bound(&f, &back, 0.5);
    }

    #[test]
    fn outlier_heavy_data_roundtrips_exactly() {
        // Alternating huge jumps — every residual escapes.
        let f = Field3::from_fn(
            [8, 8, 8],
            |i, j, k| {
                if (i + j + k) % 2 == 0 {
                    1e9
                } else {
                    -1e9
                }
            },
        );
        let sz = SzLr::default();
        let buf = sz.compress(&f, ErrorBound::Abs(1e-9));
        let back = sz.decompress(&buf).unwrap();
        check_bound(&f, &back, 1e-9);
    }

    #[test]
    fn non_multiple_dims_handled() {
        let f = smooth_field([7, 11, 5]); // none a multiple of 6
        let sz = SzLr::default();
        let buf = sz.compress(&f, ErrorBound::Rel(1e-3));
        let back = sz.decompress(&buf).unwrap();
        check_bound(&f, &back, 1e-3 * f.range());
    }

    #[test]
    fn single_cell_field() {
        let f = Field3::new([1, 1, 1], vec![42.0]);
        let sz = SzLr::default();
        let buf = sz.compress(&f, ErrorBound::Abs(0.1));
        let back = sz.decompress(&buf).unwrap();
        assert!((back.data[0] - 42.0).abs() <= 0.1);
    }

    #[test]
    fn regression_wins_on_planes() {
        // A perfect plane: regression predicts exactly; the stream should be
        // almost all zero-residual symbols → very small.
        let f = Field3::from_fn([24, 24, 24], |i, j, k| {
            2.0 * i as f64 - 3.0 * j as f64 + 0.5 * k as f64
        });
        let sz = SzLr::default();
        let buf = sz.compress(&f, ErrorBound::Rel(1e-4));
        let ratio = f.nbytes() as f64 / buf.len() as f64;
        assert!(ratio > 20.0, "plane should compress hard, got {ratio:.1}");
    }

    #[test]
    fn corrupt_stream_rejected() {
        let f = smooth_field([8, 8, 8]);
        let sz = SzLr::default();
        let buf = sz.compress(&f, ErrorBound::Rel(1e-3));
        assert!(sz.decompress(&buf[..4]).is_err());
        let mut bad = buf.clone();
        bad[0] = 0xFF;
        assert!(sz.decompress(&bad).is_err());
    }

    #[test]
    fn larger_bound_compresses_more() {
        let f = smooth_field([24, 24, 24]);
        let sz = SzLr::default();
        let small = sz.compress(&f, ErrorBound::Rel(1e-4)).len();
        let large = sz.compress(&f, ErrorBound::Rel(1e-2)).len();
        assert!(large < small, "{large} !< {small}");
    }

    #[test]
    fn bound_never_violated() {
        check(0x52A, 16, |rng| {
            let nx = rng.range_usize(1, 13);
            let ny = rng.range_usize(1, 13);
            let nz = rng.range_usize(1, 13);
            let eb_exp = rng.range_i64(-6, -1) as i32;
            let mut field_rng = rng.fork(1);
            let f = Field3::from_fn([nx, ny, nz], |i, j, _| {
                (i as f64 * 0.3).sin() + field_rng.range_f64(-0.2, 0.2) + j as f64 * 0.01
            });
            let eb = 10f64.powi(eb_exp) * f.range().max(1e-12);
            let sz = SzLr::default();
            let buf = sz.compress(&f, ErrorBound::Abs(eb));
            let back = sz.decompress(&buf).unwrap();
            for (a, b) in f.data.iter().zip(&back.data) {
                assert!((a - b).abs() <= eb * (1.0 + 1e-12));
            }
        });
    }
}
