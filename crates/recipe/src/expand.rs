//! Recipe expansion: `plug` substitution and `union` concatenation over
//! concrete `(scenario ...)` terms, in the style of Ruler's enumo
//! workload grammar.
//!
//! ```text
//! recipe   := term+                         ; top level terms concatenate
//! term     := scenario | plug | union
//! scenario := (scenario clause*)
//! plug     := (plug VAR (value+) term+)     ; VAR substituted everywhere
//! union    := (union term+)
//! ```
//!
//! Nested `plug`s form cross-products; combinations violating an
//! exclusion rule ([`ScenarioSpec::excluded`]) are dropped (and counted).
//! Every surviving spec is seeded deterministically: the canonical
//! unseeded recipe string is FNV-1a hashed into a `crates/rng` fork
//! stream of the base seed, so a spec's seed depends only on *what* it
//! is, never on its position in the expansion. An explicit `(seed N)`
//! clause overrides the derivation.

use crate::sexp::{parse, Sexp};
use crate::spec::ScenarioSpec;
use amrviz_rng::Rng;

/// The result of expanding a recipe.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// Concrete, seeded specs, in expansion order.
    pub specs: Vec<ScenarioSpec>,
    /// `(recipe, reason)` per combination dropped by an exclusion rule.
    pub excluded: Vec<(String, &'static str)>,
}

/// Parses and expands a recipe source against a base seed.
pub fn expand(src: &str, base_seed: u64) -> Result<Expansion, String> {
    let terms = parse(src)?;
    let mut concrete = Vec::new();
    for term in &terms {
        expand_term(term, &mut concrete)?;
    }
    let mut specs = Vec::new();
    let mut excluded = Vec::new();
    for term in &concrete {
        let (mut spec, explicit_seed) = ScenarioSpec::from_scenario_sexp(term)?;
        if !explicit_seed {
            spec.seed = derive_seed(base_seed, &spec.canonical_unseeded().to_string());
        }
        spec.recipe = spec.canonical().to_string();
        if let Some(reason) = spec.excluded() {
            excluded.push((spec.recipe, reason));
        } else {
            specs.push(spec);
        }
    }
    Ok(Expansion { specs, excluded })
}

/// Seed for a spec: a fork stream of the base seed keyed by the canonical
/// unseeded recipe string's FNV-1a hash.
fn derive_seed(base_seed: u64, canonical_unseeded: &str) -> u64 {
    Rng::seed(base_seed)
        .fork(fnv1a(canonical_unseeded.as_bytes()))
        .next_u64()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Expands one term into concrete scenario sexps.
fn expand_term(term: &Sexp, out: &mut Vec<Sexp>) -> Result<(), String> {
    match term.head() {
        Some("scenario") => {
            out.push(term.clone());
            Ok(())
        }
        Some("union") => {
            for t in &term.as_list().unwrap()[1..] {
                expand_term(t, out)?;
            }
            Ok(())
        }
        Some("plug") => {
            let items = term.as_list().unwrap();
            if items.len() < 4 {
                return Err(format!(
                    "(plug VAR (value+) term+) needs a variable, values, and a body: `{term}`"
                ));
            }
            let var = items[1]
                .as_atom()
                .ok_or_else(|| format!("plug variable must be an atom in `{term}`"))?;
            let values = items[2]
                .as_list()
                .ok_or_else(|| format!("plug values must be a list in `{term}`"))?;
            if values.is_empty() {
                return Err(format!("plug values are empty in `{term}`"));
            }
            for value in values {
                for body in &items[3..] {
                    expand_term(&substitute(body, var, value), out)?;
                }
            }
            Ok(())
        }
        _ => Err(format!(
            "expected (scenario ...), (plug ...), or (union ...), got `{term}`"
        )),
    }
}

/// Replaces every atom equal to `var` with `value`, recursively.
fn substitute(term: &Sexp, var: &str, value: &Sexp) -> Sexp {
    match term {
        Sexp::Atom(a) if a == var => value.clone(),
        Sexp::Atom(_) => term.clone(),
        Sexp::List(items) => Sexp::List(items.iter().map(|t| substitute(t, var, value)).collect()),
    }
}

/// The built-in enumerated suite: 4 families × 4 topologies × 2 level
/// counts = 32 scenarios from four recipe lines (no exclusions fire:
/// every combination has ≥ 2 levels at tiny scale).
pub const ENUMERATED_SUITE: &str = "\
(plug F (nyx warpx (grf -1.5) (grf -3.0))
  (plug T (nested slab scattered degenerate)
    (plug L (2 3)
      (scenario (family F) (topology T) (levels L)))))";

/// The pinned 6-scenario subset golden-locked in `tests/golden/` and run
/// by the `enumerated-smoke` CI job: one representative per topology,
/// plus a shock and an anisotropic variant.
pub const PINNED_SUBSET: &str = "\
(scenario (family nyx) (topology nested) (levels 3))
(scenario (family warpx) (topology slab) (levels 2))
(scenario (family (grf -1.5)) (topology scattered) (levels 3))
(scenario (family (grf -3.0)) (topology degenerate) (levels 2))
(scenario (family (grf -2.0)) (topology nested) (levels 2) (shock on))
(scenario (family warpx) (topology slab) (levels 2) (aniso stretched))";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_suite_expands_to_32_distinct_scenarios() {
        let exp = expand(ENUMERATED_SUITE, 42).unwrap();
        assert_eq!(exp.specs.len(), 32);
        assert!(exp.excluded.is_empty());
        let mut labels: Vec<String> = exp.specs.iter().map(|s| s.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 32, "labels collide");
    }

    #[test]
    fn pinned_subset_expands_to_6() {
        let exp = expand(PINNED_SUBSET, 42).unwrap();
        assert_eq!(exp.specs.len(), 6);
        assert!(exp.excluded.is_empty());
    }

    #[test]
    fn exclusions_are_counted_not_errors() {
        let src = "(plug T (nested slab scattered degenerate)
                     (plug L (1 2) (scenario (topology T) (levels L))))";
        let exp = expand(src, 7).unwrap();
        // 4×2 = 8 combinations; levels-1 non-nested drops 3.
        assert_eq!(exp.specs.len(), 5);
        assert_eq!(exp.excluded.len(), 3);
        for (_, reason) in &exp.excluded {
            assert!(reason.contains("nested"));
        }
    }

    #[test]
    fn seeds_depend_on_content_not_position() {
        let a = expand("(scenario (family nyx) (levels 3))", 42).unwrap();
        let b = expand(
            "(scenario (family warpx))\n(scenario (family nyx) (levels 3))",
            42,
        )
        .unwrap();
        assert_eq!(a.specs[0], b.specs[1]);
    }

    #[test]
    fn base_seed_changes_derived_seeds_but_not_explicit_ones() {
        let src = "(scenario (family nyx) (levels 3))";
        let a = expand(src, 1).unwrap();
        let b = expand(src, 2).unwrap();
        assert_ne!(a.specs[0].seed, b.specs[0].seed);
        let src = "(scenario (family nyx) (levels 3) (seed 99))";
        let a = expand(src, 1).unwrap();
        let b = expand(src, 2).unwrap();
        assert_eq!(a.specs[0].seed, 99);
        assert_eq!(a.specs[0], b.specs[0]);
    }

    #[test]
    fn union_concatenates() {
        let exp = expand(
            "(union (scenario (family nyx)) (scenario (family warpx)))",
            3,
        )
        .unwrap();
        assert_eq!(exp.specs.len(), 2);
    }

    #[test]
    fn plug_substitutes_inside_nested_lists() {
        let exp = expand("(plug A (-1.5 -3.0) (scenario (family (grf A))))", 3).unwrap();
        assert_eq!(exp.specs.len(), 2);
        assert!(exp.specs[0].recipe.contains("grf -1.5"));
    }

    #[test]
    fn malformed_recipes_error() {
        assert!(expand("(plug X (scenario))", 1).is_err());
        assert!(expand("(plug X () (scenario (family X)))", 1).is_err());
        assert!(expand("(frobnicate)", 1).is_err());
        assert!(expand("atom-at-top-level", 1).is_err());
    }
}
