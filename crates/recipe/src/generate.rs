//! Hierarchy generation for concrete [`ScenarioSpec`]s: refinement
//! topology builders (nested / slab / scattered / degenerate) over 1–4
//! levels, filled with continuous fields from [`amrviz_sim::synth`].
//!
//! Everything is a pure function of the spec's fork-stream seed: box
//! layout draws from one stream, each field from its own, so adding a
//! field or level never perturbs the others. Field values come from
//! resolution-independent functions of physical position, evaluated at
//! each level's cell centers — bit-identical at any thread count because
//! `add_field_from_fn` is per-cell pure.

use amrviz_amr::{AmrHierarchy, Box3, BoxArray, Geometry, IntVect};
use amrviz_rng::Rng;
use amrviz_sim::noise::fractal;
use amrviz_sim::synth::{plane_step, ModeSum, PulseWake};
use amrviz_sim::{NyxScenario, Scale, WarpxScenario};

use crate::spec::{Aniso, Family, ScenarioSpec, Topology};

/// Cells per fab at most — keeps every level multi-fab at small scales,
/// like a `max_grid_size` distribution would.
const MAX_BOX_CELLS: usize = 4096;

impl ScenarioSpec {
    /// Generates the hierarchy this spec describes. Paper specs route to
    /// the dedicated two-level Nyx/WarpX generators (bit-identical to the
    /// seed apps); everything else uses the generic topology builder.
    pub fn generate(&self) -> AmrHierarchy {
        if self.is_paper() {
            return match self.family {
                Family::Nyx => NyxScenario::new(self.scale, self.seed).generate(),
                Family::Warpx => WarpxScenario::new(self.scale, self.seed).generate(),
                Family::Grf { .. } => unreachable!(),
            };
        }
        let (domain, prob_hi) = self.domain();
        let geom = Geometry::new(domain, [0.0; 3], prob_hi);
        let arrays = self.build_box_arrays(domain);
        let ratios = vec![2i64; self.levels - 1];
        let mut hier = AmrHierarchy::new(geom, ratios, arrays)
            .expect("recipe topology builder emits valid structure");
        for f in 0..self.fields {
            let field_seed = Rng::seed(self.seed).fork(2 + f as u64).next_u64();
            let func = self.field_fn(field_seed);
            let name = self.field_name(f);
            hier.add_field_from_fn(&name, move |lev, iv| func(geom.cell_center(iv, 1 << lev)))
                .expect("field names are distinct");
        }
        hier
    }

    /// Level-0 index domain and physical extent.
    fn domain(&self) -> (Box3, [f64; 3]) {
        let n = match self.scale {
            Scale::Tiny => 16,
            Scale::Small => 32,
            Scale::Medium => 64,
            Scale::Paper => 128,
        };
        match self.aniso {
            Aniso::Iso => (Box3::from_dims(n, n, n), [1.0, 1.0, 1.0]),
            // Stretched: doubled z-extent in index *and* physical space
            // (cubic cells, elongated domain + elongated features).
            Aniso::Stretched => (Box3::from_dims(n, n, 2 * n), [1.0, 1.0, 2.0]),
        }
    }

    /// One `BoxArray` per level, topology-driven, from fork stream 1.
    fn build_box_arrays(&self, domain: Box3) -> Vec<BoxArray> {
        let mut rng = Rng::seed(self.seed).fork(1);
        let mut arrays = vec![BoxArray::single(domain).chop_to_max_cells(MAX_BOX_CELLS)];
        // `region` tracks, per level, the rectangle (in that level's index
        // space) inside which the next level refines.
        let mut region = domain;
        for lev in 1..self.levels {
            let (coarse_boxes, next_region) = carve(&mut rng, region, self.topology);
            let mut fine: Vec<Box3> = coarse_boxes.iter().map(|b| b.refine(2)).collect();
            if self.topology == Topology::Degenerate && lev == self.levels - 1 {
                if let Some(cell) = degenerate_cell(region, &coarse_boxes) {
                    fine.push(cell);
                }
            }
            let ba = BoxArray::new(fine).chop_to_max_cells(MAX_BOX_CELLS);
            arrays.push(ba);
            region = next_region.refine(2);
        }
        arrays
    }

    /// The continuous field function for one field's fork-stream seed.
    fn field_fn(&self, seed: u64) -> Box<dyn Fn([f64; 3]) -> f64 + Sync + Send> {
        let stretch = match self.aniso {
            Aniso::Iso => 1.0,
            Aniso::Stretched => 0.5, // z features elongated 2×
        };
        let warp = move |p: [f64; 3]| [p[0], p[1], p[2] * stretch];
        // A planar discontinuity with a seeded orientation; applied
        // additively to the base (for Nyx, inside the exponent, so the
        // jump is multiplicative like a shocked density).
        let shock = self.shock.then(|| {
            let mut r = Rng::seed(seed).fork(0x5C);
            let n = [
                r.range_f64(-1.0, 1.0),
                r.range_f64(-1.0, 1.0),
                r.range_f64(-1.0, 1.0),
            ];
            let c = [
                r.range_f64(0.35, 0.65),
                r.range_f64(0.35, 0.65),
                r.range_f64(0.35, 0.65),
            ];
            (n, c)
        });
        let step = move |p: [f64; 3]| -> f64 {
            match shock {
                Some((n, c)) => plane_step(p, n, c, 0.0, 1.5),
                None => 0.0,
            }
        };
        match self.family {
            Family::Grf { alpha } => {
                let modes = ModeSum::power_law(seed, 48, 12.0, alpha);
                Box::new(move |p| modes.eval(warp(p)) + step(p))
            }
            Family::Nyx => {
                // Spiky log-normal density over a steep GRF, roughened by
                // fractal noise (cf. `sim::nyx`, but resolution-free).
                let modes = ModeSum::power_law(seed, 48, 12.0, -2.2);
                let sigma = 1.3;
                Box::new(move |p| {
                    let q = warp(p);
                    let g = modes.eval(q) + step(p);
                    let rough = 1.0
                        + 0.25 * fractal(seed ^ 0xD1CE, q[0] * 8.3, q[1] * 8.3, q[2] * 8.3, 3, 0.5);
                    (sigma * g).exp() * rough
                })
            }
            Family::Warpx => {
                let z_hi = match self.aniso {
                    Aniso::Iso => 1.0,
                    Aniso::Stretched => 2.0,
                };
                let pulse = PulseWake::for_extent(z_hi);
                let ripple = ModeSum::power_law(seed ^ 0xE2, 24, 16.0, -4.0);
                let amp = 1.0e9;
                Box::new(move |p| {
                    amp * (pulse.eval(p) + 0.03 * ripple.eval(warp(p)) + 0.3 * step(p))
                })
            }
        }
    }
}

/// Carves the refinement footprint for one level: disjoint sub-boxes of
/// `region` (in `region`'s own index space), plus the rectangle the
/// *next* level nests into.
fn carve(rng: &mut Rng, region: Box3, topology: Topology) -> (Vec<Box3>, Box3) {
    match topology {
        Topology::Nested => {
            let sub = nested_sub(rng, region);
            (vec![sub], sub)
        }
        Topology::Slab => {
            let axis = region.longest_axis();
            let ext = region.extent(axis) as i64;
            let w = (ext / 3).max(2).min(ext);
            let start = region.lo()[axis] + rng.range_i64(0, ext - w);
            let mut lo = region.lo();
            let mut hi = region.hi();
            lo[axis] = start;
            hi[axis] = start + w - 1;
            let sub = Box3::new(lo, hi);
            (vec![sub], sub)
        }
        Topology::Scattered | Topology::Degenerate => {
            let parts = split_octants(region);
            let want = 2 + rng.below(2) as usize;
            let chosen = choose_distinct(rng, parts.len(), want.min(parts.len()));
            let subs: Vec<Box3> = chosen.iter().map(|&i| shrink_one(parts[i])).collect();
            let next = *subs
                .iter()
                .max_by_key(|b| b.num_cells())
                .expect("at least one octant chosen");
            (subs, next)
        }
    }
}

/// A centered sub-box with ~quarter margins and a seeded ±1 shift,
/// always ≥ 2 cells along every axis that allows it.
fn nested_sub(rng: &mut Rng, region: Box3) -> Box3 {
    let mut lo = region.lo();
    let mut hi = region.hi();
    for a in 0..3 {
        let ext = region.extent(a) as i64;
        let m = ext / 4;
        if m > 0 {
            let shift = rng.range_i64(-1, 1).clamp(-m, m);
            lo[a] = region.lo()[a] + m + shift;
            hi[a] = region.hi()[a] - m + shift;
        }
    }
    Box3::new(lo, hi)
}

/// Splits a box at the midpoint of every splittable axis: up to 8
/// pairwise-disjoint parts covering the box.
fn split_octants(region: Box3) -> Vec<Box3> {
    let mut parts = vec![region];
    for axis in 0..3 {
        let mut next = Vec::with_capacity(parts.len() * 2);
        for b in parts {
            let mid = b.lo()[axis] + (b.extent(axis) as i64) / 2;
            match b.chop(axis, mid) {
                Some((l, r)) => {
                    next.push(l);
                    next.push(r);
                }
                None => next.push(b),
            }
        }
        parts = next;
    }
    parts
}

/// `k` distinct indices from `0..n`, seeded order (partial Fisher–Yates).
fn choose_distinct(rng: &mut Rng, n: usize, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k.min(n) {
        let j = i + rng.below((n - i) as u64) as usize;
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Shrinks a box by a 1-cell margin on every axis that can spare it.
fn shrink_one(b: Box3) -> Box3 {
    let mut lo = b.lo();
    let mut hi = b.hi();
    for a in 0..3 {
        if b.extent(a) >= 4 {
            lo[a] += 1;
            hi[a] -= 1;
        }
    }
    Box3::new(lo, hi)
}

/// A 1×1×1 odd-coordinate (hence 2-unaligned) fine cell placed in the
/// region but outside every chosen coarse box: the degenerate corner the
/// recipe grammar's `degenerate` topology exists to exercise. Returns
/// `None` when the region leaves no free room.
fn degenerate_cell(region: Box3, taken: &[Box3]) -> Option<Box3> {
    for part in split_octants(region) {
        if taken.iter().any(|t| t.intersects(&part)) {
            continue;
        }
        let center = IntVect::new(
            (part.lo()[0] + part.hi()[0]) / 2,
            (part.lo()[1] + part.hi()[1]) / 2,
            (part.lo()[2] + part.hi()[2]) / 2,
        );
        // Refined octant spans [2·lo, 2·hi+1]; 2·center+1 is inside it
        // and odd on every axis.
        return Some(Box3::single(center.refine(2) + IntVect::UNIT));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{expand, ENUMERATED_SUITE};

    fn quick_spec(topology: Topology, levels: usize) -> ScenarioSpec {
        let mut spec = ScenarioSpec {
            family: Family::Grf { alpha: -2.0 },
            topology,
            levels,
            fields: 1,
            scale: Scale::Tiny,
            aniso: Aniso::Iso,
            shock: false,
            seed: 0xABCD,
            recipe: String::new(),
        };
        spec.recipe = spec.canonical().to_string();
        spec
    }

    #[test]
    fn every_topology_builds_at_every_level_count() {
        for topology in Topology::ALL {
            for levels in 1..=4 {
                let spec = quick_spec(topology, levels);
                if spec.excluded().is_some() {
                    continue;
                }
                let h = spec.generate();
                assert_eq!(h.num_levels(), levels, "{topology:?} L{levels}");
                assert!(h.field("f0").is_ok());
            }
        }
    }

    #[test]
    fn degenerate_topology_contains_a_single_cell_box() {
        let spec = quick_spec(Topology::Degenerate, 3);
        let h = spec.generate();
        let finest = h.box_array(h.num_levels() - 1);
        assert!(
            finest.iter().any(|b| b.num_cells() == 1),
            "no 1×1×1 box in {finest:?}"
        );
        // …and it is unaligned, so it stresses the inward-coarsening path.
        let cell = finest.iter().find(|b| b.num_cells() == 1).unwrap();
        assert!(!cell.is_aligned(2));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = quick_spec(Topology::Scattered, 3);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.box_arrays(), b.box_arrays());
        let fa = a.field("f0").unwrap();
        let fb = b.field("f0").unwrap();
        for (ma, mb) in fa.levels.iter().zip(&fb.levels) {
            for (x, y) in ma.fabs().iter().zip(mb.fabs()) {
                assert_eq!(x.data(), y.data());
            }
        }
    }

    #[test]
    fn paper_specs_match_the_seed_generators() {
        let spec = ScenarioSpec::paper(Family::Nyx, Scale::Tiny, 42);
        let a = spec.generate();
        let b = NyxScenario::new(Scale::Tiny, 42).generate();
        assert_eq!(a.box_arrays(), b.box_arrays());
        let fa = a.field("baryon_density").unwrap();
        let fb = b.field("baryon_density").unwrap();
        for (ma, mb) in fa.levels.iter().zip(&fb.levels) {
            for (x, y) in ma.fabs().iter().zip(mb.fabs()) {
                assert_eq!(x.data(), y.data());
            }
        }
    }

    #[test]
    fn multi_field_specs_carry_distinct_fields() {
        let mut spec = quick_spec(Topology::Nested, 2);
        spec.fields = 3;
        let h = spec.generate();
        assert!(h.field("f0").is_ok());
        assert!(h.field("f1").is_ok());
        assert!(h.field("f2").is_ok());
        // Different fork streams → different data.
        let a = h.field("f0").unwrap().levels[0].fabs()[0].data()[0];
        let b = h.field("f1").unwrap().levels[0].fabs()[0].data()[0];
        assert_ne!(a, b);
    }

    #[test]
    fn shock_specs_have_discontinuities() {
        let mut smooth = quick_spec(Topology::Nested, 2);
        let mut spec = quick_spec(Topology::Nested, 2);
        spec.shock = true;
        smooth.seed = spec.seed;
        let tv = |h: &AmrHierarchy| -> f64 {
            let mf = &h.field("f0").unwrap().levels[0];
            let fab = &mf.fabs()[0];
            fab.data().windows(2).map(|w| (w[1] - w[0]).abs()).sum()
        };
        assert!(tv(&spec.generate()) > tv(&smooth.generate()));
    }

    #[test]
    fn whole_enumerated_suite_generates() {
        let exp = expand(ENUMERATED_SUITE, 42).unwrap();
        assert_eq!(exp.specs.len(), 32);
        for spec in &exp.specs {
            let h = spec.generate();
            assert_eq!(h.num_levels(), spec.levels, "{}", spec.label());
        }
    }

    #[test]
    fn stretched_specs_have_elongated_domains() {
        let mut spec = quick_spec(Topology::Slab, 2);
        spec.aniso = Aniso::Stretched;
        spec.recipe = spec.canonical().to_string();
        let h = spec.generate();
        let d = h.geometry().domain.size();
        assert_eq!(d[2], 2 * d[0]);
    }
}
