//! The s-expression layer of the recipe grammar: atoms, lists, a
//! whitespace/comment-tolerant parser, and a canonical printer whose
//! output re-parses to the identical tree (the round-trip property
//! `tests/tests/recipe_expansion.rs` locks down).

use std::fmt;

/// One node of a recipe: a bare atom (`nyx`, `-1.5`, `L`) or a
/// parenthesized list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sexp {
    Atom(String),
    List(Vec<Sexp>),
}

impl Sexp {
    pub fn atom(s: &str) -> Sexp {
        Sexp::Atom(s.to_string())
    }

    pub fn list(items: Vec<Sexp>) -> Sexp {
        Sexp::List(items)
    }

    /// The atom's text, if this is an atom.
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            Sexp::Atom(s) => Some(s),
            Sexp::List(_) => None,
        }
    }

    /// The list's items, if this is a list.
    pub fn as_list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::Atom(_) => None,
            Sexp::List(items) => Some(items),
        }
    }

    /// The head atom of a list — `(scenario ...)` → `"scenario"`.
    pub fn head(&self) -> Option<&str> {
        self.as_list()?.first()?.as_atom()
    }
}

impl fmt::Display for Sexp {
    /// Canonical form: single spaces between siblings, no trailing
    /// whitespace, atoms verbatim.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Atom(s) => f.write_str(s),
            Sexp::List(items) => {
                f.write_str("(")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{it}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Prints a sequence of top-level terms, one per line (the canonical form
/// of a whole recipe file).
pub fn print_terms(terms: &[Sexp]) -> String {
    terms
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Parses a recipe source into its sequence of top-level terms.
/// `;` starts a comment running to end of line.
pub fn parse(src: &str) -> Result<Vec<Sexp>, String> {
    let tokens = tokenize(src)?;
    let mut pos = 0;
    let mut terms = Vec::new();
    while pos < tokens.len() {
        let (term, next) = parse_term(&tokens, pos)?;
        terms.push(term);
        pos = next;
    }
    Ok(terms)
}

#[derive(Debug, PartialEq)]
enum Token {
    Open,
    Close,
    Atom(String),
}

fn tokenize(src: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                out.push(Token::Open);
            }
            ')' => {
                chars.next();
                out.push(Token::Close);
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut atom = String::new();
                while let Some(&c) = chars.peek() {
                    if c == '(' || c == ')' || c == ';' || c.is_whitespace() {
                        break;
                    }
                    atom.push(c);
                    chars.next();
                }
                out.push(Token::Atom(atom));
            }
        }
    }
    Ok(out)
}

fn parse_term(tokens: &[Token], pos: usize) -> Result<(Sexp, usize), String> {
    match tokens.get(pos) {
        None => Err("unexpected end of recipe".into()),
        Some(Token::Atom(a)) => Ok((Sexp::Atom(a.clone()), pos + 1)),
        Some(Token::Close) => Err("unexpected `)`".into()),
        Some(Token::Open) => {
            let mut items = Vec::new();
            let mut p = pos + 1;
            loop {
                match tokens.get(p) {
                    None => return Err("unclosed `(`".into()),
                    Some(Token::Close) => return Ok((Sexp::List(items), p + 1)),
                    _ => {
                        let (item, next) = parse_term(tokens, p)?;
                        items.push(item);
                        p = next;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_lists_and_atoms() {
        let terms = parse("(scenario (family nyx) (levels 2))").unwrap();
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].head(), Some("scenario"));
        assert_eq!(
            terms[0].as_list().unwrap()[1],
            Sexp::list(vec![Sexp::atom("family"), Sexp::atom("nyx")])
        );
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let terms = parse("; header\n(a b) ; trailing\n\n  (c (d))").unwrap();
        assert_eq!(terms.len(), 2);
        assert_eq!(terms[1].to_string(), "(c (d))");
    }

    #[test]
    fn print_reparses_identically() {
        let src = "(plug F (nyx warpx (grf -1.5)) (scenario (family F)))";
        let terms = parse(src).unwrap();
        let printed = print_terms(&terms);
        assert_eq!(parse(&printed).unwrap(), terms);
        assert_eq!(printed, src);
    }

    #[test]
    fn errors_on_malformed_input() {
        assert!(parse("(a (b)").is_err());
        assert!(parse(")").is_err());
        assert!(parse("(a))").is_err());
    }
}
