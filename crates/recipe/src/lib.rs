//! Scenario-recipe DSL: a tiny s-expression grammar that enumerates the
//! AMR workload space from compact recipes, in the style of Ruler's
//! `enumo` substitution grammar.
//!
//! The paper evaluates exactly two applications (Nyx, WarpX — §3.2), but
//! compression behavior swings with AMR structure: box packing,
//! refinement topology, covered-region redundancy, level count. This
//! crate makes the workload space *enumerable*: a recipe like
//!
//! ```text
//! (plug F (nyx warpx (grf -1.5) (grf -3.0))
//!   (plug T (nested slab scattered degenerate)
//!     (plug L (2 3)
//!       (scenario (family F) (topology T) (levels L)))))
//! ```
//!
//! expands — cross-product via nested [`plug`](expand) substitution,
//! minus documented exclusion rules — into 32 concrete, deterministically
//! seeded [`ScenarioSpec`]s, each of which [generates](ScenarioSpec::generate)
//! a full hierarchy. Three consumers drive experiments off this surface:
//! `repro --suite enumerated`, `amrviz torture --recipes`, and the
//! recipe-sampled property tests.
//!
//! Seeding: every spec's seed is a `crates/rng` *fork stream* of the base
//! seed, keyed by the FNV-1a hash of the spec's canonical unseeded recipe
//! string — so a spec's identity, not its expansion position, decides its
//! data, and re-ordering a recipe never changes any scenario. The
//! canonical recipe string pins the resolved seed, making every spec
//! reproducible from its provenance string alone.

pub mod expand;
pub mod generate;
pub mod sexp;
pub mod spec;

pub use expand::{expand, Expansion, ENUMERATED_SUITE, PINNED_SUBSET};
pub use sexp::{parse, print_terms, Sexp};
pub use spec::{Aniso, Family, ScenarioSpec, Topology};
