//! The scenario axes and the concrete [`ScenarioSpec`] a recipe expands
//! into — the unit of experiment across repro, bench, torture, and the
//! property harness.

use crate::sexp::Sexp;
use amrviz_sim::Scale;

/// Field family — what kind of data fills the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Family {
    /// Nyx-like: spiky log-normal density (paper §3.2).
    Nyx,
    /// WarpX-like: smooth laser-wakefield pulse (paper §3.2).
    Warpx,
    /// Gaussian-random-field-like mode sum with power spectrum `|k|^alpha`.
    Grf { alpha: f64 },
}

impl Family {
    pub fn label(&self) -> String {
        match self {
            Family::Nyx => "nyx".into(),
            Family::Warpx => "warpx".into(),
            Family::Grf { alpha } => format!("grf{alpha}"),
        }
    }

    fn to_sexp(self) -> Sexp {
        match self {
            Family::Nyx => Sexp::atom("nyx"),
            Family::Warpx => Sexp::atom("warpx"),
            Family::Grf { alpha } => {
                Sexp::list(vec![Sexp::atom("grf"), Sexp::Atom(format!("{alpha}"))])
            }
        }
    }

    fn from_sexp(s: &Sexp) -> Result<Family, String> {
        match s {
            Sexp::Atom(a) if a == "nyx" => Ok(Family::Nyx),
            Sexp::Atom(a) if a == "warpx" => Ok(Family::Warpx),
            Sexp::List(items) if s.head() == Some("grf") && items.len() == 2 => {
                let alpha: f64 = items[1]
                    .as_atom()
                    .ok_or("grf slope must be an atom")?
                    .parse()
                    .map_err(|e| format!("grf slope: {e}"))?;
                if !(-6.0..=0.0).contains(&alpha) {
                    return Err(format!("grf slope {alpha} outside [-6, 0]"));
                }
                Ok(Family::Grf { alpha })
            }
            other => Err(format!("unknown family `{other}`")),
        }
    }
}

/// Refinement topology — how fine boxes tile each refined level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// A single centered sub-box per level (classic nested refinement).
    Nested,
    /// A window along the longest axis (WarpX-style pulse-following).
    Slab,
    /// Several disjoint small boxes per level (fragmented tagging).
    Scattered,
    /// Scattered plus a 1×1×1 unaligned fine box at the finest level —
    /// the minimal box a `blocking_factor 1` regridder can emit.
    Degenerate,
}

impl Topology {
    pub const ALL: [Topology; 4] = [
        Topology::Nested,
        Topology::Slab,
        Topology::Scattered,
        Topology::Degenerate,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Topology::Nested => "nested",
            Topology::Slab => "slab",
            Topology::Scattered => "scattered",
            Topology::Degenerate => "degenerate",
        }
    }

    fn parse(s: &str) -> Option<Topology> {
        Topology::ALL.into_iter().find(|t| t.label() == s)
    }
}

/// Feature anisotropy: isotropic, or elongated along z on a 2× stretched
/// domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aniso {
    Iso,
    Stretched,
}

impl Aniso {
    pub fn label(self) -> &'static str {
        match self {
            Aniso::Iso => "iso",
            Aniso::Stretched => "stretched",
        }
    }
}

/// A fully concrete scenario: every axis pinned, deterministically seeded,
/// carrying its own recipe provenance string.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    pub family: Family,
    pub topology: Topology,
    /// Total level count, 1–4 (level 0 plus up to three refined levels).
    pub levels: usize,
    /// Number of fields generated (field 0 is the evaluation field).
    pub fields: usize,
    pub scale: Scale,
    pub aniso: Aniso,
    /// Whether a planar discontinuity cuts through every field.
    pub shock: bool,
    /// The fork-stream seed every generator draw descends from.
    pub seed: u64,
    /// Canonical recipe string (round-trips through the parser and pins
    /// `seed` explicitly, so this string alone reproduces the scenario).
    pub recipe: String,
}

impl ScenarioSpec {
    /// The canonical paper scenarios: Nyx baryon density / WarpX Ez on the
    /// hard-wired two-level generators (identical output to the seed
    /// repo's `Scenario::build`).
    pub fn paper(family: Family, scale: Scale, seed: u64) -> ScenarioSpec {
        assert!(
            matches!(family, Family::Nyx | Family::Warpx),
            "paper scenarios are Nyx or WarpX"
        );
        let mut spec = ScenarioSpec {
            family,
            topology: Topology::Nested,
            levels: 2,
            fields: 1,
            scale,
            aniso: Aniso::Iso,
            shock: false,
            seed,
            recipe: String::new(),
        };
        spec.recipe = spec.canonical().to_string();
        spec
    }

    /// Whether this spec is a canonical paper scenario, routed to the
    /// dedicated Nyx/WarpX generators.
    pub fn is_paper(&self) -> bool {
        matches!(self.family, Family::Nyx | Family::Warpx)
            && self.topology == Topology::Nested
            && self.levels == 2
            && self.fields == 1
            && self.aniso == Aniso::Iso
            && !self.shock
    }

    /// Short human label: `Nyx`/`WarpX` for the paper scenarios, an
    /// axis-path otherwise (e.g. `grf-1.5/scattered/L3+shock`).
    pub fn label(&self) -> String {
        if self.is_paper() {
            return match self.family {
                Family::Nyx => "Nyx".into(),
                Family::Warpx => "WarpX".into(),
                Family::Grf { .. } => unreachable!(),
            };
        }
        let mut s = format!(
            "{}/{}/L{}",
            self.family.label(),
            self.topology.label(),
            self.levels
        );
        if self.shock {
            s.push_str("+shock");
        }
        if self.aniso == Aniso::Stretched {
            s.push_str("+aniso");
        }
        if self.fields > 1 {
            s.push_str(&format!("+f{}", self.fields));
        }
        if self.scale != Scale::Tiny {
            s.push('@');
            s.push_str(self.scale.label());
        }
        s
    }

    /// The evaluation field's name (field index 0).
    pub fn eval_field(&self) -> &'static str {
        match self.family {
            Family::Nyx => "baryon_density",
            Family::Warpx => "Ez",
            Family::Grf { .. } => "f0",
        }
    }

    /// Name of the `i`-th generated field.
    pub fn field_name(&self, i: usize) -> String {
        if i == 0 {
            self.eval_field().to_string()
        } else {
            format!("f{i}")
        }
    }

    /// Iso-surface quantile for extraction experiments (matches the seed
    /// apps: high for the smooth pulse, over-density for everything else).
    pub fn iso_quantile(&self) -> f64 {
        match self.family {
            Family::Warpx => 0.97,
            _ => 0.75,
        }
    }

    /// Why this axis combination is excluded from expansion, if it is.
    ///
    /// The two rules (documented in DESIGN.md "Scenario recipes"):
    /// 1. `levels 1` admits only `nested` topology — with no refined level
    ///    the other topologies describe structure that does not exist.
    /// 2. `levels 4` admits only `tiny` scale — the finest uniform
    ///    flattening is 8³ × the base resolution.
    pub fn excluded(&self) -> Option<&'static str> {
        if self.levels == 1 && self.topology != Topology::Nested {
            return Some("levels 1 admits only nested topology");
        }
        if self.levels == 4 && self.scale != Scale::Tiny {
            return Some("levels 4 admits only tiny scale");
        }
        None
    }

    /// Canonical sexp: every clause explicit, fixed order, seed pinned.
    pub fn canonical(&self) -> Sexp {
        let clause = |k: &str, v: Sexp| Sexp::list(vec![Sexp::atom(k), v]);
        Sexp::list(vec![
            Sexp::atom("scenario"),
            clause("family", self.family.to_sexp()),
            clause("topology", Sexp::atom(self.topology.label())),
            clause("levels", Sexp::Atom(self.levels.to_string())),
            clause("fields", Sexp::Atom(self.fields.to_string())),
            clause("scale", Sexp::atom(self.scale.label())),
            clause("aniso", Sexp::atom(self.aniso.label())),
            clause("shock", Sexp::atom(if self.shock { "on" } else { "none" })),
            clause("seed", Sexp::Atom(self.seed.to_string())),
        ])
    }

    /// Like [`Self::canonical`] but without the seed clause — the stable
    /// identity the fork-stream seed derivation hashes.
    pub fn canonical_unseeded(&self) -> Sexp {
        let Sexp::List(mut items) = self.canonical() else {
            unreachable!()
        };
        items.retain(|c| c.head() != Some("seed"));
        Sexp::List(items)
    }

    /// Parses a concrete `(scenario clause*)` term. Unset clauses take
    /// defaults (grf −2 / nested / 2 levels / 1 field / tiny / iso / no
    /// shock). Returns the spec plus whether a `(seed N)` clause pinned
    /// the seed explicitly (if not, the expander derives one).
    pub fn from_scenario_sexp(term: &Sexp) -> Result<(ScenarioSpec, bool), String> {
        if term.head() != Some("scenario") {
            return Err(format!("expected (scenario ...), got `{term}`"));
        }
        let mut spec = ScenarioSpec {
            family: Family::Grf { alpha: -2.0 },
            topology: Topology::Nested,
            levels: 2,
            fields: 1,
            scale: Scale::Tiny,
            aniso: Aniso::Iso,
            shock: false,
            seed: 0,
            recipe: String::new(),
        };
        let mut explicit_seed = false;
        let mut seen: Vec<&str> = Vec::new();
        for clause in &term.as_list().unwrap()[1..] {
            let items = clause
                .as_list()
                .ok_or_else(|| format!("scenario clause must be a list, got `{clause}`"))?;
            let key = clause
                .head()
                .ok_or_else(|| format!("clause head must be an atom in `{clause}`"))?;
            if items.len() != 2 {
                return Err(format!("clause `{clause}` takes exactly one value"));
            }
            if seen.contains(&key) {
                return Err(format!("duplicate clause `{key}`"));
            }
            let val = &items[1];
            let atom = || {
                val.as_atom()
                    .ok_or(format!("`{key}` value must be an atom"))
            };
            match key {
                "family" => spec.family = Family::from_sexp(val)?,
                "topology" => {
                    spec.topology = Topology::parse(atom()?)
                        .ok_or_else(|| format!("unknown topology `{val}`"))?
                }
                "levels" => {
                    spec.levels = atom()?.parse().map_err(|e| format!("levels: {e}"))?;
                    if !(1..=4).contains(&spec.levels) {
                        return Err(format!("levels {} outside 1–4", spec.levels));
                    }
                }
                "fields" => {
                    spec.fields = atom()?.parse().map_err(|e| format!("fields: {e}"))?;
                    if !(1..=4).contains(&spec.fields) {
                        return Err(format!("fields {} outside 1–4", spec.fields));
                    }
                }
                "scale" => {
                    spec.scale =
                        Scale::parse(atom()?).ok_or_else(|| format!("unknown scale `{val}`"))?
                }
                "aniso" => {
                    spec.aniso = match atom()? {
                        "iso" => Aniso::Iso,
                        "stretched" => Aniso::Stretched,
                        other => return Err(format!("unknown aniso `{other}`")),
                    }
                }
                "shock" => {
                    spec.shock = match atom()? {
                        "none" | "off" => false,
                        "on" | "shock" => true,
                        other => return Err(format!("unknown shock `{other}`")),
                    }
                }
                "seed" => {
                    spec.seed = atom()?.parse().map_err(|e| format!("seed: {e}"))?;
                    explicit_seed = true;
                }
                other => return Err(format!("unknown clause `{other}`")),
            }
            seen.push(key);
        }
        Ok((spec, explicit_seed))
    }

    /// Draws one random spec from the recipe space (tiny scale only, so
    /// sampling harnesses stay fast) with exclusions respected. The
    /// spec's `recipe` string pins the drawn seed, so printing it is a
    /// complete reproduction recipe.
    pub fn sample(rng: &mut amrviz_rng::Rng) -> ScenarioSpec {
        let family = match rng.below(4) {
            0 => Family::Nyx,
            1 => Family::Warpx,
            2 => Family::Grf { alpha: -1.5 },
            _ => Family::Grf { alpha: -3.0 },
        };
        let topology = Topology::ALL[rng.below(4) as usize];
        // Levels 2–4: level-1 specs only pair with nested topology and
        // exercise no inter-level machinery worth fuzzing.
        let levels = 2 + rng.below(3) as usize;
        let fields = 1 + rng.below(2) as usize;
        let aniso = if rng.chance(0.25) {
            Aniso::Stretched
        } else {
            Aniso::Iso
        };
        let shock = rng.chance(0.25);
        let mut spec = ScenarioSpec {
            family,
            topology,
            levels,
            fields,
            scale: Scale::Tiny,
            aniso,
            shock,
            seed: rng.next_u64(),
            recipe: String::new(),
        };
        debug_assert!(spec.excluded().is_none());
        spec.recipe = spec.canonical().to_string();
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sexp::parse;

    #[test]
    fn canonical_round_trips() {
        let spec = ScenarioSpec {
            family: Family::Grf { alpha: -1.5 },
            topology: Topology::Scattered,
            levels: 3,
            fields: 2,
            scale: Scale::Tiny,
            aniso: Aniso::Stretched,
            shock: true,
            seed: 0xDEAD,
            recipe: String::new(),
        };
        let printed = spec.canonical().to_string();
        let terms = parse(&printed).unwrap();
        let (back, explicit) = ScenarioSpec::from_scenario_sexp(&terms[0]).unwrap();
        assert!(explicit);
        assert_eq!(back.canonical(), spec.canonical());
    }

    #[test]
    fn defaults_fill_unset_clauses() {
        let terms = parse("(scenario (family warpx))").unwrap();
        let (spec, explicit) = ScenarioSpec::from_scenario_sexp(&terms[0]).unwrap();
        assert!(!explicit);
        assert_eq!(spec.family, Family::Warpx);
        assert_eq!(spec.levels, 2);
        assert_eq!(spec.topology, Topology::Nested);
        assert!(spec.is_paper());
    }

    #[test]
    fn exclusion_rules() {
        let mk = |levels, topology, scale| ScenarioSpec {
            family: Family::Grf { alpha: -2.0 },
            topology,
            levels,
            fields: 1,
            scale,
            aniso: Aniso::Iso,
            shock: false,
            seed: 0,
            recipe: String::new(),
        };
        assert!(mk(1, Topology::Slab, Scale::Tiny).excluded().is_some());
        assert!(mk(1, Topology::Nested, Scale::Tiny).excluded().is_none());
        assert!(mk(4, Topology::Nested, Scale::Small).excluded().is_some());
        assert!(mk(4, Topology::Nested, Scale::Tiny).excluded().is_none());
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in [
            "(scenario (family mars))",
            "(scenario (levels 9))",
            "(scenario (levels 2) (levels 3))",
            "(scenario (topology diagonal))",
            "(scenario (family (grf 2.0)))", // positive slope
            "(scenario (wibble 3))",
        ] {
            let terms = parse(bad).unwrap();
            assert!(
                ScenarioSpec::from_scenario_sexp(&terms[0]).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn paper_specs_and_labels() {
        let nyx = ScenarioSpec::paper(Family::Nyx, Scale::Tiny, 42);
        assert!(nyx.is_paper());
        assert_eq!(nyx.label(), "Nyx");
        assert_eq!(nyx.eval_field(), "baryon_density");
        let mut other = nyx.clone();
        other.levels = 3;
        assert!(!other.is_paper());
        assert_eq!(other.label(), "nyx/nested/L3");
    }

    #[test]
    fn sampled_specs_are_valid_and_reproducible() {
        let mut rng = amrviz_rng::Rng::seed(11);
        for _ in 0..50 {
            let spec = ScenarioSpec::sample(&mut rng);
            assert!(spec.excluded().is_none());
            // The recipe string alone reproduces the spec.
            let terms = parse(&spec.recipe).unwrap();
            let (back, explicit) = ScenarioSpec::from_scenario_sexp(&terms[0]).unwrap();
            assert!(explicit);
            assert_eq!(back.seed, spec.seed);
            assert_eq!(back.canonical(), spec.canonical());
        }
    }
}
