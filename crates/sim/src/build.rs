//! Shared machinery for assembling two-level snapshots from dense
//! fine-resolution fields.

use amrviz_amr::{
    berger_rigoutsos, AmrHierarchy, Box3, BoxArray, Fab, Geometry, IntVect, MultiFab, Raster,
    RegridConfig,
};

/// Structural parameters of a two-level snapshot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TwoLevelSpec {
    pub coarse_dims: [usize; 3],
    pub prob_hi: [f64; 3],
    /// Berger–Rigoutsos efficiency.
    pub efficiency: f64,
    /// Blocking factor at the coarse level.
    pub blocking: i64,
    /// Max cells per box at either level.
    pub max_box_cells: usize,
}

/// `p`-quantile (0..1) of `values` (interpolation-free, by selection).
pub(crate) fn quantile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty() && (0.0..=1.0).contains(&p));
    let mut v: Vec<f64> = values.to_vec();
    let k = ((v.len() - 1) as f64 * p).round() as usize;
    let (_, val, _) =
        v.select_nth_unstable_by(k, |a, b| a.partial_cmp(b).expect("no NaNs in field data"));
    *val
}

/// Restriction of a dense fine field (2× per axis) to the coarse grid.
pub(crate) fn restrict_dense(fine: &[f64], coarse_dims: [usize; 3]) -> Vec<f64> {
    let [cx, cy, cz] = coarse_dims;
    let (fx, fy) = (2 * cx, 2 * cy);
    assert_eq!(fine.len(), 8 * cx * cy * cz);
    let mut out = Vec::with_capacity(cx * cy * cz);
    for k in 0..cz {
        for j in 0..cy {
            for i in 0..cx {
                let mut acc = 0.0;
                for dk in 0..2 {
                    for dj in 0..2 {
                        for di in 0..2 {
                            acc += fine[(2 * i + di) + fx * ((2 * j + dj) + fy * (2 * k + dk))];
                        }
                    }
                }
                out.push(acc * 0.125);
            }
        }
    }
    out
}

/// Builds the two-level hierarchy: coarse data is the restriction of the
/// given dense fine fields (so the redundant coarse data is consistent, as
/// in a real patch-based AMR run), the fine level covers the clustered
/// `tags` region.
pub(crate) fn build_two_level(
    spec: &TwoLevelSpec,
    fine_fields: &[(String, Vec<f64>)],
    tags: &Raster,
) -> AmrHierarchy {
    let [cx, cy, cz] = spec.coarse_dims;
    let domain = Box3::from_dims(cx, cy, cz);
    assert_eq!(tags.region(), domain, "tags must live on the coarse domain");
    let cfg = RegridConfig {
        efficiency: spec.efficiency,
        blocking_factor: spec.blocking,
        max_box_cells: Some(spec.max_box_cells),
    };
    build_two_level_from_boxes(spec, fine_fields, berger_rigoutsos(tags, &cfg))
}

/// Like [`build_two_level`], but with the refined region given explicitly
/// as coarse-level boxes (e.g. WarpX's single moving-window slab).
pub(crate) fn build_two_level_from_boxes(
    spec: &TwoLevelSpec,
    fine_fields: &[(String, Vec<f64>)],
    coarse_cluster: BoxArray,
) -> AmrHierarchy {
    let [cx, cy, cz] = spec.coarse_dims;
    let domain = Box3::from_dims(cx, cy, cz);
    let geom = Geometry::new(domain, [0.0; 3], spec.prob_hi);

    let fine_ba = BoxArray::new(coarse_cluster.refine(2).boxes().to_vec())
        .chop_to_max_cells(spec.max_box_cells);
    let coarse_ba = BoxArray::single(domain).chop_to_max_cells(spec.max_box_cells);

    let mut hier = AmrHierarchy::new(geom, vec![2], vec![coarse_ba, fine_ba])
        .expect("constructed box arrays are valid");

    let fine_domain = domain.refine(2);
    let [fx, fy, _] = fine_domain.size();
    for (name, fine_dense) in fine_fields {
        let coarse_dense = restrict_dense(fine_dense, spec.coarse_dims);
        let coarse_mf = fill_from_dense(hier.box_array(0), domain, &coarse_dense);
        let fine_mf = MultiFab::from_fabs(
            hier.box_array(1)
                .iter()
                .map(|&bx| {
                    Fab::from_fn(bx, |iv: IntVect| {
                        fine_dense[iv[0] as usize + fx * (iv[1] as usize + fy * iv[2] as usize)]
                    })
                })
                .collect(),
        );
        hier.add_field(name, vec![coarse_mf, fine_mf])
            .expect("field matches constructed box arrays");
    }
    hier
}

/// Tags whole `block³` blocks whose mean value lands in the top `frac`
/// quantile — block-granular tagging that keeps Berger–Rigoutsos coverage
/// close to the target fraction even for spatially scattered fields (cell-
/// granular tags would inflate coverage to whichever blocks contain any
/// tagged cell).
pub(crate) fn tag_top_fraction_blocks(
    domain: Box3,
    dense: &[f64],
    block: usize,
    frac: f64,
) -> Raster {
    let [nx, ny, nz] = domain.size();
    assert_eq!(dense.len(), nx * ny * nz);
    let nb = [nx.div_ceil(block), ny.div_ceil(block), nz.div_ceil(block)];
    let mut means = Vec::with_capacity(nb[0] * nb[1] * nb[2]);
    for bk in 0..nb[2] {
        for bj in 0..nb[1] {
            for bi in 0..nb[0] {
                let mut sum = 0.0;
                let mut cnt = 0usize;
                for k in bk * block..((bk + 1) * block).min(nz) {
                    for j in bj * block..((bj + 1) * block).min(ny) {
                        for i in bi * block..((bi + 1) * block).min(nx) {
                            sum += dense[i + nx * (j + ny * k)];
                            cnt += 1;
                        }
                    }
                }
                means.push(sum / cnt as f64);
            }
        }
    }
    let thresh = quantile(&means, 1.0 - frac);
    let mut tags = Raster::falses(domain);
    let mut m = means.iter();
    for bk in 0..nb[2] {
        for bj in 0..nb[1] {
            for bi in 0..nb[0] {
                if *m.next().expect("mean per block") >= thresh {
                    let lo = domain.lo()
                        + IntVect::new(
                            (bi * block) as i64,
                            (bj * block) as i64,
                            (bk * block) as i64,
                        );
                    let hi = IntVect::new(
                        (((bi + 1) * block).min(nx) - 1) as i64,
                        (((bj + 1) * block).min(ny) - 1) as i64,
                        (((bk + 1) * block).min(nz) - 1) as i64,
                    ) + domain.lo();
                    tags.set_box(&Box3::new(lo, hi), true);
                }
            }
        }
    }
    tags
}

/// Multifab over `ba` with values copied from a dense array over `domain`.
pub(crate) fn fill_from_dense(ba: &BoxArray, domain: Box3, dense: &[f64]) -> MultiFab {
    let [nx, ny, _] = domain.size();
    MultiFab::from_fabs(
        ba.iter()
            .map(|&bx| {
                Fab::from_fn(bx, |iv: IntVect| {
                    let d = iv - domain.lo();
                    dense[d[0] as usize + nx * (d[1] as usize + ny * d[2] as usize)]
                })
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_amr::regrid::tag_where;

    #[test]
    fn quantile_basics() {
        let v: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.0), 0.0);
        assert_eq!(quantile(&v, 1.0), 100.0);
        assert_eq!(quantile(&v, 0.5), 50.0);
    }

    #[test]
    fn restrict_dense_averages() {
        let coarse_dims = [2, 2, 2];
        let fine: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let coarse = restrict_dense(&fine, coarse_dims);
        assert_eq!(coarse.len(), 8);
        // First coarse cell averages fine cells (0..1)³.
        let want = (0.0 + 1.0 + 4.0 + 5.0 + 16.0 + 17.0 + 20.0 + 21.0) / 8.0;
        assert_eq!(coarse[0], want);
    }

    #[test]
    fn build_produces_consistent_hierarchy() {
        let spec = TwoLevelSpec {
            coarse_dims: [16, 16, 16],
            prob_hi: [1.0; 3],
            efficiency: 0.7,
            blocking: 4,
            max_box_cells: 4096,
        };
        let fine_dims = [32, 32, 32];
        let fine: Vec<f64> = (0..fine_dims[0] * fine_dims[1] * fine_dims[2])
            .map(|n| {
                let i = n % 32;
                if i < 16 {
                    10.0
                } else {
                    1.0
                }
            })
            .collect();
        let coarse = restrict_dense(&fine, spec.coarse_dims);
        let domain = Box3::from_dims(16, 16, 16);
        let tags = tag_where(domain, &coarse, |v| v > 5.0);
        let hier = build_two_level(&spec, &[("u".into(), fine.clone())], &tags);

        assert_eq!(hier.num_levels(), 2);
        // All tagged cells are covered by the fine level.
        let covered = hier.covered_mask(0);
        for cell in tags.true_cells() {
            assert!(covered.get(cell), "tag {cell:?} not refined");
        }
        // Coarse data is the restriction of fine data where covered.
        let c0 = hier.field_level("u", 0).unwrap();
        let f1 = hier.field_level("u", 1).unwrap();
        for cell in covered.true_cells() {
            let cv = c0.value_at(cell).unwrap();
            let mut avg = 0.0;
            for dz in 0..2 {
                for dy in 0..2 {
                    for dx in 0..2 {
                        avg += f1
                            .value_at(cell.refine(2) + IntVect::new(dx, dy, dz))
                            .unwrap();
                    }
                }
            }
            assert!((cv - avg / 8.0).abs() < 1e-12);
        }
    }
}
