//! Resolution-independent synthetic field families for recipe-driven
//! scenarios.
//!
//! Unlike [`crate::grf`], which synthesizes a dense array at one fixed
//! resolution, everything here is a *continuous function of physical
//! position* — the same function can be sampled at every AMR level of a
//! 1–4 level hierarchy and the levels agree wherever they overlap. That is
//! what lets the recipe expander vary level count and refinement topology
//! without re-generating (or storing) per-level data.

use amrviz_rng::Rng;

const TAU: f64 = std::f64::consts::TAU;

/// A band-limited random field: a sum of cosine modes with a power-law
/// amplitude spectrum `|k|^(alpha/2)` (so the *power* spectrum falls as
/// `|k|^alpha`, matching [`crate::grf::Spectrum`]'s convention). Steeper
/// (more negative) `alpha` → smoother fields; shallower → rougher.
#[derive(Debug, Clone)]
pub struct ModeSum {
    /// `(k, amplitude, phase)` per mode; `k` in cycles per unit length.
    modes: Vec<([f64; 3], f64, f64)>,
}

impl ModeSum {
    /// Draws `n_modes` random modes with wavenumbers up to `k_max` and a
    /// power-law amplitude spectrum. Amplitudes are normalized so the
    /// field's RMS is ≈ 1 regardless of `alpha` or mode count.
    pub fn power_law(seed: u64, n_modes: usize, k_max: f64, alpha: f64) -> ModeSum {
        assert!(n_modes > 0 && k_max >= 1.0);
        let mut rng = Rng::seed(seed);
        let mut modes = Vec::with_capacity(n_modes);
        let mut power = 0.0;
        for _ in 0..n_modes {
            // Rejection-sample a wavevector with 1 ≤ |k| ≤ k_max.
            let k = loop {
                let k = [
                    rng.range_f64(-k_max, k_max),
                    rng.range_f64(-k_max, k_max),
                    rng.range_f64(-k_max, k_max),
                ];
                let mag = (k[0] * k[0] + k[1] * k[1] + k[2] * k[2]).sqrt();
                if (1.0..=k_max).contains(&mag) {
                    break k;
                }
            };
            let mag = (k[0] * k[0] + k[1] * k[1] + k[2] * k[2]).sqrt();
            let amp = mag.powf(alpha / 2.0);
            let phase = rng.range_f64(0.0, TAU);
            power += 0.5 * amp * amp; // mean of cos² is 1/2
            modes.push((k, amp, phase));
        }
        let norm = power.sqrt().recip();
        for (_, amp, _) in &mut modes {
            *amp *= norm;
        }
        ModeSum { modes }
    }

    /// Evaluates the field at physical position `p`.
    pub fn eval(&self, p: [f64; 3]) -> f64 {
        self.modes
            .iter()
            .map(|(k, amp, phase)| {
                amp * (TAU * (k[0] * p[0] + k[1] * p[1] + k[2] * p[2]) + phase).cos()
            })
            .sum()
    }
}

/// A WarpX-like laser-wakefield pulse, as a continuous function of
/// position in `[0,1]² × [0, z_hi]`: a Gaussian-envelope oscillation at
/// `z0` trailed by a decaying plasma wake, both confined radially
/// (cf. [`crate::warpx`], which samples the same structure on a fixed
/// two-level grid).
#[derive(Debug, Clone)]
pub struct PulseWake {
    pub z0: f64,
    pub wavelength: f64,
    pub wake_wavelength: f64,
    pub wake_decay: f64,
    pub sigma_r: f64,
}

impl PulseWake {
    /// Pulse parameters scaled to a domain of height `z_hi`.
    pub fn for_extent(z_hi: f64) -> PulseWake {
        PulseWake {
            z0: 0.62 * z_hi,
            wavelength: 0.04 * z_hi,
            wake_wavelength: 0.12 * z_hi,
            wake_decay: 0.25 * z_hi,
            sigma_r: 0.22,
        }
    }

    /// Evaluates the pulse+wake field at physical position `p` (unit
    /// amplitude; scale externally).
    pub fn eval(&self, p: [f64; 3]) -> f64 {
        let (x, y, z) = (p[0], p[1], p[2]);
        let r2 = (x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5);
        let radial = (-r2 / (2.0 * self.sigma_r * self.sigma_r)).exp();
        // Wavefront curvature: off-axis parts of the pulse lag behind.
        let zc = z + 0.15 * self.wavelength * r2 / (self.sigma_r * self.sigma_r);
        let dz = zc - self.z0;
        let pulse_env = (-dz * dz / (2.0 * self.wavelength * self.wavelength)).exp();
        let wake_env = if dz < 0.0 {
            (dz / self.wake_decay).exp()
        } else {
            0.0
        };
        radial
            * (pulse_env * (TAU * zc / self.wavelength).sin()
                + 0.35 * wake_env * (TAU * (self.z0 - zc) / self.wake_wavelength).cos())
    }
}

/// A planar discontinuity: returns `hi_side` on the positive side of the
/// plane through `c` with normal `n`, else `lo_side`. The recipe grammar's
/// `shock` axis multiplies fields by this to create the hard jumps that
/// stress predictor-based compressors.
pub fn plane_step(p: [f64; 3], n: [f64; 3], c: [f64; 3], lo_side: f64, hi_side: f64) -> f64 {
    let d = n[0] * (p[0] - c[0]) + n[1] * (p[1] - c[1]) + n[2] * (p[2] - c[2]);
    if d > 0.0 {
        hi_side
    } else {
        lo_side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_sum_is_deterministic_and_continuous() {
        let a = ModeSum::power_law(42, 32, 8.0, -2.0);
        let b = ModeSum::power_law(42, 32, 8.0, -2.0);
        let p = [0.3, 0.7, 0.1];
        assert_eq!(a.eval(p), b.eval(p));
        // Continuity: nearby points give nearby values.
        let q = [0.3 + 1e-6, 0.7, 0.1];
        assert!((a.eval(p) - a.eval(q)).abs() < 1e-3);
    }

    #[test]
    fn steeper_spectrum_is_smoother() {
        // Mean |∇|-proxy over a line of samples: the steep spectrum must
        // vary less between adjacent samples than the shallow one.
        let rough = ModeSum::power_law(7, 48, 12.0, -0.5);
        let smooth = ModeSum::power_law(7, 48, 12.0, -4.0);
        let tv = |f: &ModeSum| -> f64 {
            (0..200)
                .map(|i| {
                    let t0 = i as f64 / 200.0;
                    let t1 = (i + 1) as f64 / 200.0;
                    (f.eval([t0, 0.4, 0.6]) - f.eval([t1, 0.4, 0.6])).abs()
                })
                .sum()
        };
        assert!(
            tv(&smooth) < tv(&rough),
            "{} !< {}",
            tv(&smooth),
            tv(&rough)
        );
    }

    #[test]
    fn rms_is_normalized() {
        for alpha in [-0.5, -2.0, -4.0] {
            let f = ModeSum::power_law(3, 64, 10.0, alpha);
            let mut sum2 = 0.0;
            let n = 4096;
            let mut rng = Rng::seed(9);
            for _ in 0..n {
                let p = [rng.f64(), rng.f64(), rng.f64()];
                let v = f.eval(p);
                sum2 += v * v;
            }
            let rms = (sum2 / n as f64).sqrt();
            assert!((0.3..3.0).contains(&rms), "alpha {alpha}: rms {rms}");
        }
    }

    #[test]
    fn pulse_peaks_at_focus_and_decays_radially() {
        let pw = PulseWake::for_extent(1.0);
        let on_axis: f64 = (0..40)
            .map(|i| pw.eval([0.5, 0.5, pw.z0 + (i as f64 - 20.0) * 0.002]).abs())
            .fold(0.0, f64::max);
        let off_axis: f64 = (0..40)
            .map(|i| {
                pw.eval([0.05, 0.05, pw.z0 + (i as f64 - 20.0) * 0.002])
                    .abs()
            })
            .fold(0.0, f64::max);
        assert!(on_axis > 0.5);
        assert!(off_axis < 0.5 * on_axis);
    }

    #[test]
    fn plane_step_jumps() {
        let n = [1.0, 0.0, 0.0];
        let c = [0.5, 0.5, 0.5];
        assert_eq!(plane_step([0.6, 0.1, 0.1], n, c, 1.0, 2.5), 2.5);
        assert_eq!(plane_step([0.4, 0.9, 0.9], n, c, 1.0, 2.5), 1.0);
    }
}
