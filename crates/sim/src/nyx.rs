//! Nyx-like cosmology snapshot generator.
//!
//! Nyx couples compressible hydrodynamics with dark matter particles and
//! dumps six fields: baryon density, dark-matter density, temperature, and
//! three velocity components (paper §3.2). The stand-in preserves what the
//! paper's analysis depends on:
//!
//! * **density is irregular/spiky** — a log-normal transform of a rough
//!   Gaussian random field gives the strong right skew and multi-scale
//!   structure of cosmic density;
//! * **temperature correlates with density** (a power-law "equation of
//!   state" plus scatter);
//! * **velocities are smoother, signed fields** (steeper spectrum);
//! * refinement tags where density exceeds a quantile threshold (Nyx
//!   refines on over-density), tuned so the fine level holds ≈ 40.7% of the
//!   domain (Table 1).

use amrviz_amr::{AmrHierarchy, Box3};

use crate::build::{build_two_level, restrict_dense, tag_top_fraction_blocks, TwoLevelSpec};
use crate::grf::{gaussian_random_field, Spectrum};
use crate::noise::fractal;
use crate::scale::Scale;

/// All six Nyx field names, in dump order.
pub const NYX_FIELDS: [&str; 6] = [
    "baryon_density",
    "dark_matter_density",
    "temperature",
    "velocity_x",
    "velocity_y",
    "velocity_z",
];

/// Generator configuration for the Nyx-like scenario.
#[derive(Debug, Clone)]
pub struct NyxScenario {
    pub scale: Scale,
    pub seed: u64,
    /// Fraction of the domain refined to the fine level (paper: 0.407).
    pub target_fine_fraction: f64,
    /// Log-normal width of the density field; larger = spikier.
    pub sigma: f64,
    /// Which fields to generate (subset of [`NYX_FIELDS`]).
    pub fields: Vec<String>,
}

impl NyxScenario {
    /// Default configuration at the given scale: density field only (the
    /// field the paper evaluates in Table 2 / Fig. 13).
    pub fn new(scale: Scale, seed: u64) -> Self {
        NyxScenario {
            scale,
            seed,
            target_fine_fraction: 0.407,
            sigma: 1.3,
            fields: vec!["baryon_density".to_string()],
        }
    }

    /// All six fields.
    pub fn with_all_fields(mut self) -> Self {
        self.fields = NYX_FIELDS.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Generates the two-level snapshot.
    pub fn generate(&self) -> AmrHierarchy {
        let coarse_dims = self.scale.nyx_coarse_dims();
        let fine_dims = [coarse_dims[0] * 2, coarse_dims[1] * 2, coarse_dims[2] * 2];

        // The driver field: log-normal over-density, mean-normalized. The
        // spectrum is steep enough to give coherent filaments/halos (so
        // refinement regions cluster) while the log-normal transform plus
        // the fractal multiplier below supply the small-scale spikiness.
        let g = gaussian_random_field(
            fine_dims,
            Spectrum {
                alpha: -2.2,
                k_cutoff: 1e9,
            },
            self.seed,
        );
        let mut density: Vec<f64> = g.iter().map(|&v| (self.sigma * v).exp()).collect();
        let mean = density.iter().sum::<f64>() / density.len() as f64;
        for v in &mut density {
            *v /= mean;
        }
        // Extra small-scale roughness (shock-like sharpening).
        let [fx, fy, _] = fine_dims;
        for (n, v) in density.iter_mut().enumerate() {
            let i = n % fx;
            let j = (n / fx) % fy;
            let k = n / (fx * fy);
            let r = fractal(
                self.seed ^ 0xD1CE,
                i as f64 * 0.21,
                j as f64 * 0.21,
                k as f64 * 0.21,
                3,
                0.5,
            );
            *v *= 1.0 + 0.25 * r;
        }

        let mut fields: Vec<(String, Vec<f64>)> = Vec::new();
        for name in &self.fields {
            let data = match name.as_str() {
                "baryon_density" => density.clone(),
                "dark_matter_density" => {
                    let g2 = gaussian_random_field(
                        fine_dims,
                        Spectrum::rough(),
                        self.seed ^ 0xDA12_37EE,
                    );
                    // Correlated with baryons (shared large-scale modes
                    // approximated by mixing fields).
                    let mut dm: Vec<f64> = g2
                        .iter()
                        .zip(&g)
                        .map(|(&a, &b)| (self.sigma * (0.6 * b + 0.8 * a)).exp())
                        .collect();
                    let m = dm.iter().sum::<f64>() / dm.len() as f64;
                    dm.iter_mut().for_each(|v| *v /= m);
                    dm
                }
                "temperature" => {
                    // T ∝ ρ^0.6 with log-scatter, in Kelvin-ish units.
                    let gs = gaussian_random_field(
                        fine_dims,
                        Spectrum::smooth(),
                        self.seed ^ 0x0007_E411,
                    );
                    density
                        .iter()
                        .zip(&gs)
                        .map(|(&rho, &s)| 1.0e4 * rho.powf(0.6) * (0.3 * s).exp())
                        .collect()
                }
                "velocity_x" | "velocity_y" | "velocity_z" => {
                    let axis_seed = match name.as_str() {
                        "velocity_x" => 0x11,
                        "velocity_y" => 0x22,
                        _ => 0x33,
                    };
                    let gv = gaussian_random_field(
                        fine_dims,
                        Spectrum {
                            alpha: -3.0,
                            k_cutoff: 1e9,
                        },
                        self.seed ^ axis_seed,
                    );
                    // km/s-ish scale.
                    gv.iter().map(|&v| 250.0 * v).collect()
                }
                other => panic!("unknown Nyx field: {other}"),
            };
            fields.push((name.clone(), data));
        }

        // Tag over-dense blocks so the refined fraction matches the target
        // (clustering can round coverage up slightly).
        let coarse_density = restrict_dense(&density, coarse_dims);
        let domain = Box3::from_dims(coarse_dims[0], coarse_dims[1], coarse_dims[2]);
        let tags = tag_top_fraction_blocks(domain, &coarse_density, 4, self.target_fine_fraction);

        let spec = TwoLevelSpec {
            coarse_dims,
            prob_hi: [1.0; 3],
            efficiency: 0.80,
            blocking: 4,
            max_box_cells: 64 * 64 * 64,
        };
        let mut hier = build_two_level(&spec, &fields, &tags);
        hier.time = 0.0;
        hier.step = 0;
        hier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grf::{roughness, skewness};
    use amrviz_amr::resample::{flatten_to_finest, Upsample};

    fn tiny() -> AmrHierarchy {
        NyxScenario::new(Scale::Tiny, 42).generate()
    }

    #[test]
    fn structure_matches_table1_shape() {
        let h = tiny();
        assert_eq!(h.num_levels(), 2);
        assert_eq!(h.ref_ratios(), &[2]);
        let d0 = h.level_domain(0).size();
        assert_eq!(d0, [32, 32, 32]);
        assert_eq!(h.level_domain(1).size(), [64, 64, 64]);
        assert_eq!(h.field_names(), vec!["baryon_density"]);
    }

    #[test]
    fn fine_fraction_near_target() {
        let h = tiny();
        let fine_frac = h.level_density(1);
        assert!(
            (0.35..=0.60).contains(&fine_frac),
            "fine fraction {fine_frac} far from 0.407"
        );
        // Densities always partition the domain.
        assert!((h.level_density(0) + fine_frac - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_is_spiky_and_positive() {
        let h = tiny();
        let u = flatten_to_finest(&h, "baryon_density", Upsample::PiecewiseConstant).unwrap();
        assert!(u.data.iter().all(|&v| v > 0.0));
        assert!(
            skewness(&u.data) > 1.0,
            "density not right-skewed: {}",
            skewness(&u.data)
        );
    }

    #[test]
    fn refinement_covers_high_density() {
        // The mean density inside the refined region should exceed the mean
        // outside (we refine on over-density).
        let h = tiny();
        let covered = h.covered_mask(0);
        let mf = h.field_level("baryon_density", 0).unwrap();
        let (mut hi, mut nhi, mut lo, mut nlo) = (0.0, 0usize, 0.0, 0usize);
        for fab in mf.fabs() {
            for (cell, v) in fab.iter() {
                if covered.get(cell) {
                    hi += v;
                    nhi += 1;
                } else {
                    lo += v;
                    nlo += 1;
                }
            }
        }
        assert!(nhi > 0 && nlo > 0);
        assert!(hi / nhi as f64 > 1.5 * (lo / nlo as f64));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NyxScenario::new(Scale::Tiny, 7).generate();
        let b = NyxScenario::new(Scale::Tiny, 7).generate();
        let ua = flatten_to_finest(&a, "baryon_density", Upsample::Trilinear).unwrap();
        let ub = flatten_to_finest(&b, "baryon_density", Upsample::Trilinear).unwrap();
        assert_eq!(ua.data, ub.data);
    }

    #[test]
    fn all_six_fields_generate() {
        let h = NyxScenario::new(Scale::Tiny, 3)
            .with_all_fields()
            .generate();
        assert_eq!(h.field_names().len(), 6);
        // Velocities are signed; temperature positive.
        let v = h.field_level("velocity_x", 0).unwrap();
        assert!(v.min() < 0.0 && v.max() > 0.0);
        let t = h.field_level("temperature", 0).unwrap();
        assert!(t.min() > 0.0);
    }

    #[test]
    fn nyx_density_is_rougher_than_a_smooth_field() {
        // Cross-check the key property the paper relies on.
        let h = tiny();
        let u = flatten_to_finest(&h, "baryon_density", Upsample::PiecewiseConstant).unwrap();
        let dims = u.dims();
        let r_nyx = roughness(&u.data, dims);
        let smooth = gaussian_random_field(dims, Spectrum::smooth(), 1);
        let r_smooth = roughness(&smooth, dims);
        assert!(
            r_nyx > 2.0 * r_smooth,
            "Nyx-like field not rough enough: {r_nyx} vs {r_smooth}"
        );
    }
}
