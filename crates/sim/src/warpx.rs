//! WarpX-like particle-in-cell snapshot generator.
//!
//! WarpX models laser-wakefield acceleration: a short laser pulse drives a
//! plasma wake; the interesting physics travels with the pulse, so the mesh
//! is refined in a slab around it (paper §3.2, Table 1: long 128×128×1024
//! box, only 8.6% refined). The paper's key property is that WarpX data is
//! **smooth** — band-limited oscillations under smooth envelopes — which is
//! exactly what a Gaussian-enveloped wave packet plus a damped sinusoidal
//! wake provides.

use amrviz_amr::{AmrHierarchy, Box3};

use crate::build::TwoLevelSpec;

use crate::scale::Scale;

/// Generator configuration for the WarpX-like scenario.
#[derive(Debug, Clone)]
pub struct WarpxScenario {
    pub scale: Scale,
    pub seed: u64,
    /// Fraction of the domain refined (paper: 0.086).
    pub target_fine_fraction: f64,
    /// Pulse amplitude (field units are arbitrary, V/m-ish).
    pub amplitude: f64,
}

impl WarpxScenario {
    pub fn new(scale: Scale, seed: u64) -> Self {
        WarpxScenario {
            scale,
            seed,
            target_fine_fraction: 0.086,
            amplitude: 1.0e9,
        }
    }

    /// Generates the two-level snapshot with the "Ez" field (the paper's
    /// Table 2 / Fig. 12 field).
    pub fn generate(&self) -> AmrHierarchy {
        let coarse_dims = self.scale.warpx_coarse_dims();
        let fine_dims = [coarse_dims[0] * 2, coarse_dims[1] * 2, coarse_dims[2] * 2];
        let [fx, fy, fz] = fine_dims;
        // Physical box keeps the paper's 1:8 aspect along z.
        let aspect = coarse_dims[2] as f64 / coarse_dims[0] as f64;
        let prob_hi = [1.0, 1.0, aspect];

        // Pulse/wake geometry. Oscillation scales are expressed in *fine
        // cells* so the field is well-resolved (smooth) at every preset —
        // a real PIC run always resolves the laser wavelength. Wavefronts
        // are radially curved (a focusing Gaussian beam / wake bubble), so
        // the field varies smoothly along every axis.
        let zl = prob_hi[2];
        let hz_fine = zl / fz as f64;
        let z0 = 0.62 * zl; // pulse center
        let lambda = 32.0 * hz_fine; // laser wavelength: 32 fine cells
        let sigma_z = 1.0 * lambda; // pulse length
        let lambda_p = 96.0 * hz_fine; // plasma wavelength (wake)
        let wake_decay = 200.0 * hz_fine;
        let sigma_r = 0.22; // transverse spot size
        let sr2 = sigma_r * sigma_r;

        // Smooth large-scale background: every mode spans ≥ 24 cells on
        // every axis (plasma density ripple), so it stays compressible
        // structure — never noise — at all tested error bounds.
        let bg = crate::grf::random_smooth_modes(fine_dims, 24, 32.0, self.seed);

        let hz = hz_fine;
        let hx = prob_hi[0] / fx as f64;
        let hy = prob_hi[1] / fy as f64;
        let amp = self.amplitude;
        let mut ez = Vec::with_capacity(fx * fy * fz);
        let mut envelope = Vec::with_capacity(fx * fy * fz);
        for k in 0..fz {
            let z = (k as f64 + 0.5) * hz;
            let pulse_env = (-((z - z0) / sigma_z).powi(2) / 2.0).exp();
            let wake_env = if z < z0 {
                (-(z0 - z) / wake_decay).exp()
            } else {
                0.0
            };
            for j in 0..fy {
                let y = (j as f64 + 0.5) * hy - 0.5;
                for i in 0..fx {
                    let x = (i as f64 + 0.5) * hx - 0.5;
                    let r2 = x * x + y * y;
                    let radial = (-r2 / (2.0 * sr2)).exp();
                    // Radial wavefront curvature: ~0.15λ phase advance at
                    // one spot radius.
                    let zc = z + 0.15 * lambda * r2 / sr2;
                    let pulse_osc = (std::f64::consts::TAU * zc / lambda).sin();
                    let wake_osc = (std::f64::consts::TAU * (z0 - zc) / lambda_p).cos();
                    let e = amp * radial * (pulse_env * pulse_osc + 0.35 * wake_env * wake_osc);
                    let idx = i + fx * (j + fy * k);
                    ez.push(e + 0.03 * amp * bg[idx]);
                    envelope.push(radial * (pulse_env + wake_env));
                }
            }
        }

        // Refinement: WarpX refines a single moving-window slab around the
        // pulse (mesh refinement follows the laser). Pick the z-window of
        // width `target_fine_fraction·cz` with the highest total envelope.
        let coarse_env = crate::build::restrict_dense(&envelope, coarse_dims);
        let [ccx, ccy, ccz] = coarse_dims;
        let mut z_profile = vec![0.0f64; ccz];
        for (n, &v) in coarse_env.iter().enumerate() {
            z_profile[n / (ccx * ccy)] += v;
        }
        let blocking = 4usize;
        let width = ((self.target_fine_fraction * ccz as f64).round() as usize)
            .clamp(blocking, ccz)
            .next_multiple_of(blocking)
            .min(ccz);
        let mut best = (0usize, f64::NEG_INFINITY);
        for k0 in (0..=ccz - width).step_by(blocking) {
            let s: f64 = z_profile[k0..k0 + width].iter().sum();
            if s > best.1 {
                best = (k0, s);
            }
        }
        let slab = Box3::new(
            amrviz_amr::IntVect::new(0, 0, best.0 as i64),
            amrviz_amr::IntVect::new(ccx as i64 - 1, ccy as i64 - 1, (best.0 + width) as i64 - 1),
        );

        let spec = TwoLevelSpec {
            coarse_dims,
            prob_hi,
            efficiency: 0.80,
            blocking: blocking as i64,
            // Large fabs, like a production max_grid_size: fewer per-fab
            // compression restarts.
            max_box_cells: 128 * 128 * 128,
        };
        crate::build::build_two_level_from_boxes(
            &spec,
            &[("Ez".to_string(), ez)],
            amrviz_amr::BoxArray::single(slab),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grf::roughness;
    use crate::nyx::NyxScenario;
    use amrviz_amr::resample::{flatten_to_finest, Upsample};

    fn tiny() -> AmrHierarchy {
        WarpxScenario::new(Scale::Tiny, 42).generate()
    }

    #[test]
    fn structure_matches_table1_shape() {
        let h = tiny();
        assert_eq!(h.num_levels(), 2);
        assert_eq!(h.level_domain(0).size(), [16, 16, 128]);
        assert_eq!(h.level_domain(1).size(), [32, 32, 256]);
        assert_eq!(h.field_names(), vec!["Ez"]);
        // Elongated physical box.
        let g = h.geometry();
        assert!(g.prob_hi[2] / g.prob_hi[0] > 4.0);
    }

    #[test]
    fn fine_fraction_near_target() {
        let h = tiny();
        let f = h.level_density(1);
        assert!(
            (0.05..=0.25).contains(&f),
            "fine fraction {f} far from 0.086"
        );
    }

    #[test]
    fn refinement_follows_the_pulse() {
        let h = tiny();
        // The refined boxes should concentrate around the pulse center
        // z0 = 0.62·zl → coarse index ≈ 0.62·128 ≈ 79.
        let ba = h.box_array(1);
        let bb = ba.bounding_box().unwrap().coarsen(2);
        let (lo_k, hi_k) = (bb.lo()[2], bb.hi()[2]);
        assert!(
            lo_k >= 32 && hi_k <= 120,
            "refined slab [{lo_k}, {hi_k}] not around the pulse"
        );
        // Pulse z-range must be inside.
        assert!(
            (lo_k..=hi_k).contains(&79),
            "slab [{lo_k},{hi_k}] misses z0"
        );
    }

    #[test]
    fn ez_is_signed_and_oscillatory() {
        let h = tiny();
        let mf = h.field_level("Ez", 1).unwrap();
        let (lo, hi) = mf.min_max();
        assert!(
            lo < -0.1 * 1e9 && hi > 0.1 * 1e9,
            "no oscillation: [{lo}, {hi}]"
        );
    }

    #[test]
    fn warpx_is_smoother_than_nyx() {
        // The central contrast the paper's §3.2 sets up.
        let hw = tiny();
        let uw = flatten_to_finest(&hw, "Ez", Upsample::PiecewiseConstant).unwrap();
        let hn = NyxScenario::new(Scale::Tiny, 42).generate();
        let un = flatten_to_finest(&hn, "baryon_density", Upsample::PiecewiseConstant).unwrap();
        let rw = roughness(&uw.data, uw.dims());
        let rn = roughness(&un.data, un.dims());
        assert!(
            rn > 2.0 * rw,
            "expected Nyx ≫ WarpX roughness, got {rn} vs {rw}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WarpxScenario::new(Scale::Tiny, 5).generate();
        let b = WarpxScenario::new(Scale::Tiny, 5).generate();
        let ua = flatten_to_finest(&a, "Ez", Upsample::Trilinear).unwrap();
        let ub = flatten_to_finest(&b, "Ez", Upsample::Trilinear).unwrap();
        assert_eq!(ua.data, ub.data);
    }
}
