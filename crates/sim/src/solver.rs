//! A miniature time-stepping AMR application: 3D linear advection with
//! live regridding.
//!
//! This is the dynamic counterpart of the static snapshot generators — the
//! analogue of the paper's Fig. 2, where "as the universe evolves, the grid
//! structure adjusts accordingly". A scalar field is advected with a
//! constant velocity using first-order upwind differences on a two-level
//! hierarchy (no subcycling; fine boundary conditions interpolated from
//! the coarse level; fine data restricted back after each step), and the
//! fine level is re-clustered every few steps from a gradient tag.

use amrviz_amr::multifab::rasterize_into;
use amrviz_amr::regrid::tag_gradient;
use amrviz_amr::{
    berger_rigoutsos, AmrHierarchy, Box3, BoxArray, Fab, Geometry, IntVect, MultiFab, RegridConfig,
};

/// The advected field name.
pub const FIELD: &str = "u";

/// Two-level AMR advection solver.
pub struct AmrAdvection {
    hier: AmrHierarchy,
    velocity: [f64; 3],
    /// Gradient-magnitude threshold for tagging (in value/cell units).
    pub tag_threshold: f64,
    /// Steps between regrids.
    pub regrid_every: u64,
    regrid_cfg: RegridConfig,
    dt: f64,
    steps: u64,
}

impl AmrAdvection {
    /// Builds the solver on an `n³`-cell unit-cube coarse grid, refining
    /// once (ratio 2). `init` is sampled at fine cell centers.
    pub fn new(
        n: usize,
        velocity: [f64; 3],
        tag_threshold: f64,
        init: impl Fn([f64; 3]) -> f64 + Sync,
    ) -> Self {
        let geom = Geometry::unit(Box3::from_dims(n, n, n));
        // Start with a trivial fine level; the first regrid sizes it.
        let mut hier = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain).chop_to_max_cells(32 * 32 * 32),
                BoxArray::default(),
            ],
        )
        .unwrap_or_else(|_| unreachable!("valid construction"));
        // An empty fine level is not allowed by `add_field` per-level
        // validation only if boxes mismatch; empty is fine.
        let coarse = MultiFab::from_fn(hier.box_array(0), |iv| init(geom.cell_center(iv, 1)));
        hier.add_field(FIELD, vec![coarse, MultiFab::from_fabs(Vec::new())])
            .expect("field matches boxes");

        let h = geom.cell_size()[0] / 2.0; // fine spacing
        let vmax = velocity
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1e-12);
        let dt = 0.4 * h / vmax;

        let mut solver = AmrAdvection {
            hier,
            velocity,
            tag_threshold,
            regrid_every: 4,
            regrid_cfg: RegridConfig {
                efficiency: 0.7,
                blocking_factor: 4,
                max_box_cells: Some(32 * 32 * 32),
            },
            dt,
            steps: 0,
        };
        solver.regrid(&init);
        solver
    }

    pub fn hierarchy(&self) -> &AmrHierarchy {
        &self.hier
    }

    pub fn time(&self) -> f64 {
        self.hier.time
    }

    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Rebuilds the fine level from a gradient tag on the coarse field.
    /// `fine_init` provides values for newly-refined cells with no previous
    /// fine data (initial call) — afterwards prolongation is used.
    fn regrid(&mut self, fine_init: &(impl Fn([f64; 3]) -> f64 + Sync)) {
        let dom = self.hier.level_domain(0);
        let mut dense = vec![0.0; dom.num_cells()];
        rasterize_into(
            self.hier.field_level(FIELD, 0).expect("field exists"),
            dom,
            &mut dense,
        );
        let tags = tag_gradient(dom, &dense, self.tag_threshold);
        let cluster = berger_rigoutsos(&tags, &self.regrid_cfg);
        let fine_ba = cluster.refine(2);

        // New fine data: start from trilinear prolongation of coarse, then
        // copy any overlapping old fine data (data persistence across
        // regrids), falling back to `fine_init` only on the very first call
        // when no coarse context exists... (coarse always exists, so
        // prolongation is the actual fallback; `fine_init` sharpens the
        // initial condition at fine resolution).
        let coarse_full = Fab::from_vec(dom, dense);
        let old_fine = self.hier.field(FIELD).map(|f| f.levels[1].clone()).ok();
        let geom = *self.hier.geometry();
        let first_time = self.steps == 0;
        let fine_fabs: Vec<Fab> = fine_ba
            .iter()
            .map(|&bx| {
                let mut fab = if first_time {
                    Fab::from_fn(bx, |iv: IntVect| fine_init(geom.cell_center(iv, 2)))
                } else {
                    amrviz_amr::prolong_trilinear(&coarse_full, bx, 2)
                };
                if let Some(old) = &old_fine {
                    for ofab in old.fabs() {
                        fab.copy_from(ofab);
                    }
                }
                fab
            })
            .collect();

        let coarse_ba = self.hier.box_array(0).clone();
        let coarse_mf = self.hier.field_level(FIELD, 0).expect("field").clone();
        let mut new_hier = AmrHierarchy::new(geom, vec![2], vec![coarse_ba, fine_ba])
            .expect("regridded boxes are valid");
        new_hier.time = self.hier.time;
        new_hier.step = self.hier.step;
        new_hier
            .add_field(FIELD, vec![coarse_mf, MultiFab::from_fabs(fine_fabs)])
            .expect("rebuilt field matches boxes");
        self.hier = new_hier;
    }

    /// Advances one time step on both levels.
    pub fn step(&mut self) {
        let dt = self.dt;
        // Level 0: periodic upwind on the dense domain.
        let dom0 = self.hier.level_domain(0);
        let h0 = self.hier.geometry().cell_size();
        let mut u0 = vec![0.0; dom0.num_cells()];
        rasterize_into(
            self.hier.field_level(FIELD, 0).expect("field"),
            dom0,
            &mut u0,
        );
        let new0 = upwind_periodic(&u0, dom0.size(), h0, self.velocity, dt);
        let new0_fab = Fab::from_vec(dom0, new0);

        // Level 1: dense over the fine bounding region, ghost values from
        // trilinear prolongation of the *old* coarse solution.
        let fine_mf = self.hier.field_level(FIELD, 1).expect("field").clone();
        let mut new_fine_fabs: Vec<Fab> = Vec::with_capacity(fine_mf.len());
        let h1 = self.hier.geometry().cell_size_at(2);
        let coarse_old_fab = Fab::from_vec(dom0, u0);
        for fab in fine_mf.fabs() {
            let grown = fab
                .box3()
                .grow(1)
                .intersect(&self.hier.level_domain(1))
                .expect("grown box intersects domain");
            // Ghost-filled work fab: prolong coarse, overwrite with any fine
            // data (own box and neighbors).
            let mut work = amrviz_amr::prolong_trilinear(&coarse_old_fab, grown, 2);
            for other in fine_mf.fabs() {
                work.copy_from(other);
            }
            let stepped = upwind_bounded(&work, h1, self.velocity, dt);
            // Old values first (zeroth-order hold for any cells the clipped
            // stencil could not update at the physical boundary), then the
            // stepped interior.
            let mut out = Fab::zeros(fab.box3());
            out.copy_from(&work);
            out.copy_from(&stepped);
            new_fine_fabs.push(out);
        }
        let new_fine = MultiFab::from_fabs(new_fine_fabs);

        // Write back, then restrict fine → coarse on covered cells.
        let mut new_coarse = MultiFab::from_fabs(
            self.hier
                .box_array(0)
                .iter()
                .map(|&bx| {
                    let mut f = Fab::zeros(bx);
                    f.copy_from(&new0_fab);
                    f
                })
                .collect(),
        );
        for ffab in new_fine.fabs() {
            let coarse_target = ffab.box3().coarsen(2);
            let restricted = amrviz_amr::restrict_average(ffab, coarse_target, 2);
            for cfab in new_coarse.fabs_mut() {
                cfab.copy_from(&restricted);
            }
        }
        let field = self.hier.field_mut(FIELD).expect("field exists");
        field.levels = vec![new_coarse, new_fine];

        self.steps += 1;
        self.hier.step = self.steps;
        self.hier.time += dt;
        if self.steps.is_multiple_of(self.regrid_every) {
            let dummy = |_: [f64; 3]| 0.0;
            self.regrid(&dummy);
        }
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

/// First-order upwind advection with periodic wrap on a dense grid.
fn upwind_periodic(u: &[f64], dims: [usize; 3], h: [f64; 3], vel: [f64; 3], dt: f64) -> Vec<f64> {
    let [nx, ny, nz] = dims;
    let idx = |i: usize, j: usize, k: usize| i + nx * (j + ny * k);
    let mut out = vec![0.0; u.len()];
    let c = [dt * vel[0] / h[0], dt * vel[1] / h[1], dt * vel[2] / h[2]];
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let here = u[idx(i, j, k)];
                let up = |axis: usize| -> f64 {
                    // Neighbor against the flow (periodic).
                    match axis {
                        0 => {
                            if vel[0] >= 0.0 {
                                u[idx((i + nx - 1) % nx, j, k)]
                            } else {
                                u[idx((i + 1) % nx, j, k)]
                            }
                        }
                        1 => {
                            if vel[1] >= 0.0 {
                                u[idx(i, (j + ny - 1) % ny, k)]
                            } else {
                                u[idx(i, (j + 1) % ny, k)]
                            }
                        }
                        _ => {
                            if vel[2] >= 0.0 {
                                u[idx(i, j, (k + nz - 1) % nz)]
                            } else {
                                u[idx(i, j, (k + 1) % nz)]
                            }
                        }
                    }
                };
                let mut v = here;
                for (axis, &ca) in c.iter().enumerate() {
                    v -= ca.abs() * (here - up(axis));
                }
                out[idx(i, j, k)] = v;
            }
        }
    }
    out
}

/// Upwind step on a ghost-padded fab; returns the updated interior (the
/// fab shrunk by one cell on every side that had ghosts).
fn upwind_bounded(work: &Fab, h: [f64; 3], vel: [f64; 3], dt: f64) -> Fab {
    let bx = work.box3();
    let interior = bx.grow(-1);
    let c = [dt * vel[0] / h[0], dt * vel[1] / h[1], dt * vel[2] / h[2]];
    Fab::from_fn(interior, |iv| {
        let here = work.get(iv);
        let mut v = here;
        for axis in 0..3 {
            let mut shift = IntVect::ZERO;
            shift[axis] = if vel[axis] >= 0.0 { -1 } else { 1 };
            v -= c[axis].abs() * (here - work.get(iv + shift));
        }
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blob(center: [f64; 3]) -> impl Fn([f64; 3]) -> f64 {
        move |p: [f64; 3]| {
            let r2 = (p[0] - center[0]).powi(2)
                + (p[1] - center[1]).powi(2)
                + (p[2] - center[2]).powi(2);
            (-r2 / (2.0 * 0.06f64.powi(2))).exp()
        }
    }

    #[test]
    fn initial_regrid_tracks_the_blob() {
        let s = AmrAdvection::new(32, [1.0, 0.0, 0.0], 0.02, gaussian_blob([0.3, 0.5, 0.5]));
        let h = s.hierarchy();
        assert!(!h.box_array(1).is_empty(), "no refinement around the blob");
        let bb = h.box_array(1).bounding_box().unwrap().coarsen(2);
        // Blob at x=0.3 → coarse index ≈ 9.6.
        let geom = h.geometry();
        let center = geom.cell_center(
            IntVect::new(
                (bb.lo()[0] + bb.hi()[0]) / 2,
                (bb.lo()[1] + bb.hi()[1]) / 2,
                (bb.lo()[2] + bb.hi()[2]) / 2,
            ),
            1,
        );
        assert!(
            (center[0] - 0.3).abs() < 0.15,
            "refined region at {center:?}"
        );
        assert!((center[1] - 0.5).abs() < 0.15);
    }

    #[test]
    fn max_principle_holds() {
        let mut s = AmrAdvection::new(16, [1.0, 0.5, 0.25], 0.05, gaussian_blob([0.5, 0.5, 0.5]));
        s.run(10);
        for lev in 0..2 {
            let mf = s.hierarchy().field_level(FIELD, lev).unwrap();
            if mf.is_empty() {
                continue;
            }
            let (lo, hi) = mf.min_max();
            assert!(lo >= -1e-9, "undershoot at level {lev}: {lo}");
            assert!(hi <= 1.0 + 1e-9, "overshoot at level {lev}: {hi}");
        }
    }

    #[test]
    fn blob_moves_with_the_flow() {
        let mut s = AmrAdvection::new(32, [1.0, 0.0, 0.0], 0.02, gaussian_blob([0.3, 0.5, 0.5]));
        let peak_x = |s: &AmrAdvection| -> f64 {
            let dom = s.hierarchy().level_domain(0);
            let mut dense = vec![0.0; dom.num_cells()];
            rasterize_into(
                s.hierarchy().field_level(FIELD, 0).unwrap(),
                dom,
                &mut dense,
            );
            let (mut best, mut best_x) = (f64::NEG_INFINITY, 0.0);
            for (n, cell) in dom.cells().enumerate() {
                if dense[n] > best {
                    best = dense[n];
                    best_x = s.hierarchy().geometry().cell_center(cell, 1)[0];
                }
            }
            best_x
        };
        let x0 = peak_x(&s);
        s.run(20);
        let x1 = peak_x(&s);
        let expect = x0 + s.time();
        // Upwind diffuses, but the peak should track v·t to within a couple
        // of coarse cells.
        assert!(
            (x1 - expect).abs() < 3.0 / 32.0,
            "peak at {x1}, expected ≈ {expect}"
        );
    }

    #[test]
    fn regridding_follows_the_blob() {
        let mut s = AmrAdvection::new(32, [1.0, 0.0, 0.0], 0.02, gaussian_blob([0.25, 0.5, 0.5]));
        let slab_center = |s: &AmrAdvection| -> f64 {
            let bb = s.hierarchy().box_array(1).bounding_box().unwrap();
            let geom = s.hierarchy().geometry();
            geom.cell_center(IntVect::new((bb.lo()[0] + bb.hi()[0]) / 2, 0, 0), 2)[0]
        };
        let c0 = slab_center(&s);
        s.run(24); // several regrids
        let c1 = slab_center(&s);
        assert!(
            c1 > c0 + 0.05,
            "refined region did not follow the blob: {c0} → {c1}"
        );
    }

    #[test]
    fn time_and_steps_advance() {
        let mut s = AmrAdvection::new(16, [0.0, 0.0, 1.0], 0.05, gaussian_blob([0.5; 3]));
        assert_eq!(s.hierarchy().step, 0);
        s.run(5);
        assert_eq!(s.hierarchy().step, 5);
        assert!((s.time() - 5.0 * s.dt()).abs() < 1e-12);
    }
}
