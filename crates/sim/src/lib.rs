//! Synthetic AMR application data.
//!
//! The paper evaluates on two AMReX applications whose production datasets
//! we cannot ship: the **Nyx** cosmology code and the **WarpX**
//! particle-in-cell code. This crate builds statistical stand-ins that
//! preserve the property the paper's analysis hinges on (§3.2): Nyx data is
//! *irregular and spiky*, WarpX data is *smooth*. See DESIGN.md for the
//! substitution rationale.
//!
//! * [`grf`] — Gaussian random fields with power-law spectra, synthesized
//!   spectrally with `amrviz-fft`;
//! * [`noise`] — hash-based fractal value noise (cheap deterministic
//!   perturbations);
//! * [`nyx`] — a two-level Nyx-like snapshot: log-normal baryon/dark-matter
//!   density, temperature, velocities; density-threshold refinement;
//! * [`warpx`] — a two-level WarpX-like snapshot: a laser-wakefield-style
//!   `Ez` field; pulse-following slab refinement;
//! * [`solver`] — a small time-stepping AMR advection solver with live
//!   regridding (the paper's Fig. 2 analogue);
//! * [`scale`] — laptop-to-paper problem-size presets;
//! * [`synth`] — continuous (resolution-independent) field families that
//!   the recipe grammar samples at arbitrary level counts and topologies.

pub(crate) mod build;
pub mod grf;
pub mod noise;
pub mod nyx;
pub mod scale;
pub mod solver;
pub mod synth;
pub mod warpx;

pub use nyx::NyxScenario;
pub use scale::Scale;
pub use solver::AmrAdvection;
pub use warpx::WarpxScenario;
