//! Problem-size presets.
//!
//! The paper's runs (Table 1) use grids up to 512³ and 256×256×2048 on
//! NERSC hardware. Every preset below exercises the same code paths;
//! `Paper` reproduces the exact published shapes, the smaller presets make
//! tests and laptop runs fast. All dimensions are powers of two (required
//! by the spectral synthesizer).

/// Problem-size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test scale.
    Tiny,
    /// Example/default scale.
    Small,
    /// Reproduction-run scale (default for `repro`).
    Medium,
    /// The exact shapes from the paper's Table 1. Needs several GB of RAM.
    Paper,
}

impl Scale {
    /// Coarse-level dims of the Nyx-like cube (fine level is 2× each axis;
    /// paper: 256³ coarse, 512³ fine).
    pub fn nyx_coarse_dims(self) -> [usize; 3] {
        let n = match self {
            Scale::Tiny => 32,
            Scale::Small => 64,
            Scale::Medium => 128,
            Scale::Paper => 256,
        };
        [n, n, n]
    }

    /// Coarse-level dims of the WarpX-like box (fine level is 2× each axis;
    /// paper: 128×128×1024 coarse, 256×256×2048 fine).
    pub fn warpx_coarse_dims(self) -> [usize; 3] {
        match self {
            Scale::Tiny => [16, 16, 128],
            Scale::Small => [32, 32, 256],
            Scale::Medium => [64, 64, 512],
            Scale::Paper => [128, 128, 1024],
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_are_pow2() {
        for s in [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Paper] {
            for d in s.nyx_coarse_dims().into_iter().chain(s.warpx_coarse_dims()) {
                assert!(d.is_power_of_two(), "{s:?}: {d}");
            }
        }
    }

    #[test]
    fn paper_scale_matches_table1() {
        assert_eq!(Scale::Paper.nyx_coarse_dims(), [256, 256, 256]);
        assert_eq!(Scale::Paper.warpx_coarse_dims(), [128, 128, 1024]);
    }

    #[test]
    fn parse_roundtrip() {
        for s in [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Paper] {
            assert_eq!(Scale::parse(s.label()), Some(s));
        }
        assert_eq!(Scale::parse("HUGE"), None);
        assert_eq!(Scale::parse("Medium"), Some(Scale::Medium));
    }
}
