//! Deterministic hash-based fractal value noise.
//!
//! Used for cheap, seedable, grid-free perturbations (e.g. roughening the
//! Nyx-like fields, modulating the WarpX background). Value noise is
//! trilinearly interpolated lattice noise; `fractal` stacks octaves.

/// SplitMix64 — a tiny, high-quality 64-bit mixer.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Hash of a lattice point + seed → uniform in [−1, 1].
#[inline]
fn lattice(seed: u64, i: i64, j: i64, k: i64) -> f64 {
    let h = splitmix64(
        seed ^ (i as u64).wrapping_mul(0x8DA6B343)
            ^ (j as u64).wrapping_mul(0xD8163841)
            ^ (k as u64).wrapping_mul(0xCB1AB31F),
    );
    // 53 random mantissa bits → [0,1) → [−1,1).
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Smoothstep fade (Perlin's quintic).
#[inline]
fn fade(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

/// Single-octave value noise at a continuous position, range ≈ [−1, 1].
pub fn value_noise(seed: u64, x: f64, y: f64, z: f64) -> f64 {
    let (i0, j0, k0) = (x.floor() as i64, y.floor() as i64, z.floor() as i64);
    let (fx, fy, fz) = (
        fade(x - i0 as f64),
        fade(y - j0 as f64),
        fade(z - k0 as f64),
    );
    let mut acc = 0.0;
    for dk in 0..2i64 {
        let wz = if dk == 0 { 1.0 - fz } else { fz };
        for dj in 0..2i64 {
            let wy = if dj == 0 { 1.0 - fy } else { fy };
            for di in 0..2i64 {
                let wx = if di == 0 { 1.0 - fx } else { fx };
                acc += wx * wy * wz * lattice(seed, i0 + di, j0 + dj, k0 + dk);
            }
        }
    }
    acc
}

/// Fractal (fBm) noise: `octaves` octaves with lacunarity 2 and the given
/// per-octave gain. Output is normalized to keep the amplitude envelope
/// ≈ [−1, 1] regardless of octave count.
pub fn fractal(seed: u64, x: f64, y: f64, z: f64, octaves: u32, gain: f64) -> f64 {
    debug_assert!(octaves >= 1);
    let mut amp = 1.0;
    let mut freq = 1.0;
    let mut acc = 0.0;
    let mut norm = 0.0;
    for o in 0..octaves {
        acc += amp
            * value_noise(
                seed.wrapping_add(o as u64 * 0x9E37),
                x * freq,
                y * freq,
                z * freq,
            );
        norm += amp;
        amp *= gain;
        freq *= 2.0;
    }
    acc / norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = value_noise(42, 1.5, 2.5, 3.5);
        let b = value_noise(42, 1.5, 2.5, 3.5);
        assert_eq!(a, b);
        let c = value_noise(43, 1.5, 2.5, 3.5);
        assert_ne!(a, c);
    }

    #[test]
    fn matches_lattice_at_integer_points() {
        for (i, j, k) in [(0i64, 0i64, 0i64), (5, -3, 2), (-10, 7, 100)] {
            let direct = lattice(7, i, j, k);
            let interp = value_noise(7, i as f64, j as f64, k as f64);
            assert!((direct - interp).abs() < 1e-12);
        }
    }

    #[test]
    fn bounded() {
        for n in 0..2000 {
            let x = n as f64 * 0.173;
            let v = value_noise(1, x, x * 0.7, x * 0.3);
            assert!((-1.0..=1.0).contains(&v), "out of range: {v}");
            let f = fractal(1, x, x * 0.7, x * 0.3, 5, 0.5);
            assert!((-1.0..=1.0).contains(&f), "fractal out of range: {f}");
        }
    }

    #[test]
    fn continuity() {
        // Small position deltas produce small value deltas.
        let eps = 1e-4;
        for n in 0..100 {
            let x = n as f64 * 0.37 + 0.5;
            let a = value_noise(9, x, 1.1, 2.2);
            let b = value_noise(9, x + eps, 1.1, 2.2);
            assert!((a - b).abs() < 0.01, "discontinuity at {x}");
        }
    }

    #[test]
    fn fractal_roughens_with_octaves() {
        // Higher octave counts add high-frequency energy: the mean absolute
        // difference between adjacent samples grows.
        let tv = |oct: u32| -> f64 {
            (0..500)
                .map(|n| {
                    let x = n as f64 * 0.05;
                    (fractal(3, x + 0.05, 0.0, 0.0, oct, 0.6) - fractal(3, x, 0.0, 0.0, oct, 0.6))
                        .abs()
                })
                .sum()
        };
        assert!(tv(6) > tv(1) * 1.2, "{} vs {}", tv(6), tv(1));
    }

    #[test]
    fn zero_mean_ish() {
        let mean: f64 = (0..4000)
            .map(|n| {
                let x = (n % 20) as f64 * 0.618;
                let y = ((n / 20) % 20) as f64 * 0.618;
                let z = (n / 400) as f64 * 0.618;
                value_noise(11, x, y, z)
            })
            .sum::<f64>()
            / 4000.0;
        assert!(mean.abs() < 0.08, "biased noise: {mean}");
    }
}
