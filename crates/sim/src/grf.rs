//! Gaussian random fields with power-law spectra.
//!
//! Synthesized spectrally: fill Fourier space with white Gaussian
//! coefficients, shape them by `sqrt(P(k))` with `P(k) ∝ k^α · exp(−(k/k_c)²)`,
//! inverse-transform, and keep the real part (a standard trick; it merely
//! rescales the variance, which we normalize away). Steep negative `α`
//! gives smooth large-scale fields (WarpX-ish backgrounds); shallow `α`
//! gives rough multi-scale fields whose log-normal transform mimics the
//! filamentary spikiness of Nyx density.

use amrviz_fft::{ifft3, Complex, Grid3};
use amrviz_rng::Rng;

/// Spectrum parameters for [`gaussian_random_field`].
#[derive(Debug, Clone, Copy)]
pub struct Spectrum {
    /// Power-law slope α in `P(k) ∝ k^α`.
    pub alpha: f64,
    /// Gaussian cutoff wavenumber (in grid units, Nyquist = n/2); caps the
    /// smallest scales.
    pub k_cutoff: f64,
}

impl Spectrum {
    /// Smooth, large-scale-dominated field.
    pub fn smooth() -> Self {
        Spectrum {
            alpha: -4.0,
            k_cutoff: 8.0,
        }
    }

    /// Rough, multi-scale field (cosmology-ish).
    pub fn rough() -> Self {
        Spectrum {
            alpha: -1.5,
            k_cutoff: 1e9,
        }
    }
}

/// Generates a zero-mean, unit-variance Gaussian random field on a
/// power-of-two grid.
///
/// # Panics
/// Panics if any dim is not a power of two.
pub fn gaussian_random_field(dims: [usize; 3], spectrum: Spectrum, seed: u64) -> Vec<f64> {
    let [nx, ny, nz] = dims;
    assert!(
        nx.is_power_of_two() && ny.is_power_of_two() && nz.is_power_of_two(),
        "GRF dims must be powers of two, got {dims:?}"
    );
    let mut rng = Rng::seed(seed);
    let mut grid = Grid3::zeros(nx, ny, nz);

    // Signed wavenumber of FFT bin `i` on an axis of length `n`.
    let wave = |i: usize, n: usize| -> f64 {
        if i <= n / 2 {
            i as f64
        } else {
            i as f64 - n as f64
        }
    };
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let kx = wave(i, nx);
                let ky = wave(j, ny);
                let kz = wave(k, nz);
                let kk = (kx * kx + ky * ky + kz * kz).sqrt();
                if kk == 0.0 {
                    continue; // zero mean
                }
                let amp = kk.powf(spectrum.alpha / 2.0) * (-(kk / spectrum.k_cutoff).powi(2)).exp();
                let re = rng.normal() * amp;
                let im = rng.normal() * amp;
                grid.set(i, j, k, Complex::new(re, im));
            }
        }
    }
    ifft3(&mut grid);
    let mut field = grid.real_part();

    // Normalize to zero mean, unit variance.
    let n = field.len() as f64;
    let mean = field.iter().sum::<f64>() / n;
    let var = field.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let inv_sd = if var > 0.0 { 1.0 / var.sqrt() } else { 1.0 };
    for v in &mut field {
        *v = (*v - mean) * inv_sd;
    }
    field
}

/// A smooth random field built from a small number of long-wavelength
/// cosine modes (random direction, phase and amplitude), normalized to
/// roughly unit variance.
///
/// Unlike [`gaussian_random_field`], smoothness is controlled *per axis in
/// cells*: mode `a`-frequencies are capped at `dims[a] / min_cells_per_wave`
/// cycles, so every wavelength spans at least `min_cells_per_wave` cells on
/// every axis regardless of anisotropy. Used for the WarpX-like background,
/// which must stay smooth relative to every tested error bound.
pub fn random_smooth_modes(
    dims: [usize; 3],
    n_modes: usize,
    min_cells_per_wave: f64,
    seed: u64,
) -> Vec<f64> {
    assert!(n_modes > 0 && min_cells_per_wave > 0.0);
    let [nx, ny, nz] = dims;
    let mut rng = Rng::seed(seed);
    let max_k = [
        (nx as f64 / min_cells_per_wave).max(0.0),
        (ny as f64 / min_cells_per_wave).max(0.0),
        (nz as f64 / min_cells_per_wave).max(0.0),
    ];
    // (angular frequency per cell on each axis, phase, amplitude)
    let modes: Vec<([f64; 3], f64, f64)> = (0..n_modes)
        .map(|_| {
            let k = [
                rng.range_f64(-max_k[0], max_k[0]) * std::f64::consts::TAU / nx as f64,
                rng.range_f64(-max_k[1], max_k[1]) * std::f64::consts::TAU / ny as f64,
                rng.range_f64(-max_k[2], max_k[2]) * std::f64::consts::TAU / nz as f64,
            ];
            let phase = rng.range_f64(0.0, std::f64::consts::TAU);
            let amp = rng.range_f64(0.3, 1.0);
            (k, phase, amp)
        })
        .collect();
    let norm = (2.0 / modes.iter().map(|&(_, _, a)| a * a).sum::<f64>()).sqrt();

    let mut out = vec![0.0f64; nx * ny * nz];
    amrviz_par::for_each_chunk_mut(&mut out, nx * ny, |z, slab| {
        for j in 0..ny {
            for i in 0..nx {
                let mut acc = 0.0;
                for &(k, phase, amp) in &modes {
                    acc +=
                        amp * (k[0] * i as f64 + k[1] * j as f64 + k[2] * z as f64 + phase).cos();
                }
                slab[i + nx * j] = acc * norm;
            }
        }
    });
    out
}

/// Sample skewness of a data set — log-normal transforms of GRFs should be
/// strongly right-skewed (Nyx-like density).
pub fn skewness(data: &[f64]) -> f64 {
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let m2 = data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    let m3 = data.iter().map(|v| (v - mean).powi(3)).sum::<f64>() / n;
    if m2 == 0.0 {
        0.0
    } else {
        m3 / m2.powf(1.5)
    }
}

/// Mean absolute difference between x-adjacent samples, normalized by the
/// standard deviation — a cheap roughness measure used to verify the
/// smooth/rough contrast between the two scenario families.
pub fn roughness(data: &[f64], dims: [usize; 3]) -> f64 {
    let [nx, ny, nz] = dims;
    assert_eq!(data.len(), nx * ny * nz);
    if nx < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    let mut cnt = 0usize;
    for k in 0..nz {
        for j in 0..ny {
            let row = nx * (j + ny * k);
            for i in 1..nx {
                acc += (data[row + i] - data[row + i - 1]).abs();
                cnt += 1;
            }
        }
    }
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    let sd = (data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / data.len() as f64).sqrt();
    if sd == 0.0 {
        0.0
    } else {
        acc / cnt as f64 / sd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_moments() {
        let f = gaussian_random_field([32, 32, 32], Spectrum::rough(), 1);
        let n = f.len() as f64;
        let mean = f.iter().sum::<f64>() / n;
        let var = f.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 1e-10);
        assert!((var - 1.0).abs() < 1e-10);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gaussian_random_field([16, 16, 16], Spectrum::smooth(), 7);
        let b = gaussian_random_field([16, 16, 16], Spectrum::smooth(), 7);
        assert_eq!(a, b);
        let c = gaussian_random_field([16, 16, 16], Spectrum::smooth(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn smooth_spectrum_is_smoother_than_rough() {
        let dims = [32, 32, 32];
        let s = gaussian_random_field(dims, Spectrum::smooth(), 3);
        let r = gaussian_random_field(dims, Spectrum::rough(), 3);
        let rs = roughness(&s, dims);
        let rr = roughness(&r, dims);
        assert!(rr > 2.0 * rs, "rough field not rougher: {rr} vs {rs}");
    }

    #[test]
    fn lognormal_transform_is_right_skewed() {
        let g = gaussian_random_field([32, 32, 32], Spectrum::rough(), 5);
        let logn: Vec<f64> = g.iter().map(|v| (1.2 * v).exp()).collect();
        assert!(skewness(&g).abs() < 0.3, "GRF should be symmetric");
        assert!(skewness(&logn) > 1.5, "log-normal should be spiky");
    }

    #[test]
    fn anisotropic_dims() {
        let f = gaussian_random_field([8, 16, 64], Spectrum::smooth(), 2);
        assert_eq!(f.len(), 8 * 16 * 64);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn rejects_non_pow2() {
        gaussian_random_field([12, 16, 16], Spectrum::smooth(), 0);
    }
}
