//! Recipe DSL integration: grammar round-trips, expansion counts follow
//! the cross-product minus exclusion rules, and identical recipes yield
//! byte-identical scenarios at any thread count.

use amrviz_recipe::{expand, parse, print_terms, ScenarioSpec, ENUMERATED_SUITE, PINNED_SUBSET};

#[test]
fn grammar_round_trips_through_the_printer() {
    for src in [
        ENUMERATED_SUITE,
        PINNED_SUBSET,
        "(union (scenario (family nyx)) (plug A (-1.5 -3.0) (scenario (family (grf A)))))",
        "; comment\n(scenario (family warpx) (levels 2) (seed 9))",
    ] {
        let terms = parse(src).expect("parses");
        let printed = print_terms(&terms);
        let reparsed = parse(&printed).expect("printed form parses");
        assert_eq!(terms, reparsed, "round-trip changed the tree for:\n{src}");
        // The canonical printed form is a fixed point.
        assert_eq!(printed, print_terms(&reparsed));
    }
}

#[test]
fn expansion_count_is_cross_product_minus_exclusions() {
    // 3 topologies × 3 level counts = 9 combinations. Exclusions: R1
    // drops levels-1 for the two non-nested topologies (2), R2 drops
    // nothing (no levels-4, and scale defaults to tiny anyway).
    let src = "(plug T (nested slab scattered)
                 (plug L (1 2 3) (scenario (topology T) (levels L))))";
    let exp = expand(src, 11).unwrap();
    assert_eq!(exp.specs.len() + exp.excluded.len(), 9);
    assert_eq!(exp.excluded.len(), 2);
    // R2: levels-4 beyond tiny scale is excluded, tiny survives.
    let src = "(plug S (tiny small) (scenario (levels 4) (scale S)))";
    let exp = expand(src, 11).unwrap();
    assert_eq!(exp.specs.len(), 1);
    assert_eq!(exp.excluded.len(), 1);
    assert!(exp.excluded[0].1.contains("tiny"), "{}", exp.excluded[0].1);
}

#[test]
fn builtin_suite_is_compact_and_broad() {
    // The acceptance floor: ≥ 24 distinct scenarios from ≤ 5 recipe lines.
    assert!(ENUMERATED_SUITE.lines().count() <= 5);
    let exp = expand(ENUMERATED_SUITE, 42).unwrap();
    assert!(exp.specs.len() >= 24, "only {} specs", exp.specs.len());
    let mut labels: Vec<String> = exp.specs.iter().map(ScenarioSpec::label).collect();
    labels.sort();
    labels.dedup();
    assert_eq!(labels.len(), exp.specs.len(), "scenario labels collide");
    for spec in &exp.specs {
        // Every spec's provenance string pins its resolved seed, so the
        // string alone reproduces the spec under any base seed.
        assert!(spec.recipe.contains("(seed "), "{}", spec.recipe);
        let again = expand(&spec.recipe, 12345).unwrap();
        assert_eq!(again.specs.len(), 1);
        assert_eq!(&again.specs[0], spec, "recipe string did not round-trip");
    }
}

#[test]
fn expansion_and_generation_are_thread_count_invariant() {
    let fingerprint = || -> Vec<(ScenarioSpec, Vec<u64>)> {
        expand(PINNED_SUBSET, 42)
            .unwrap()
            .specs
            .into_iter()
            .map(|spec| {
                let h = spec.generate();
                let field = spec.eval_field();
                let mut bits = Vec::new();
                for lev in 0..h.num_levels() {
                    let mf = h.field_level(field, lev).unwrap();
                    for fab in mf.fabs() {
                        bits.extend(fab.data().iter().map(|v| v.to_bits()));
                    }
                }
                (spec, bits)
            })
            .collect()
    };
    amrviz_par::set_threads(1);
    let seq = fingerprint();
    amrviz_par::set_threads(4);
    let par = fingerprint();
    amrviz_par::set_threads(1);
    assert_eq!(seq.len(), par.len());
    for ((s1, b1), (s4, b4)) in seq.iter().zip(&par) {
        assert_eq!(s1, s4, "spec differs across thread counts");
        assert_eq!(
            b1,
            b4,
            "{}: field bits differ across thread counts",
            s1.label()
        );
    }
}
