//! End-to-end coverage of the serving stack: real sockets, real store,
//! real worker pool — the full `amrviz serve` path minus the CLI veneer.

use amrviz_compress::{compress_hierarchy_field, AmrCodecConfig, ErrorBound, SzLr};
use amrviz_serve::proto::{Op, Request};
use amrviz_serve::{
    encode_artifact, exchange, start, BlobStore, ClientConfig, Outcome, ServeConfig,
    ServeTortureConfig, Status,
};
use amrviz_sim::{NyxScenario, Scale};
use std::time::Duration;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("amrviz_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Stores one good Nyx-tiny artifact, returns (dir, key, total fab count).
fn populate(tag: &str) -> (std::path::PathBuf, u64, usize) {
    let dir = temp_dir(tag);
    let store = BlobStore::open(&dir).unwrap();
    let hier = NyxScenario::new(Scale::Tiny, 11).generate();
    let container = compress_hierarchy_field(
        &hier,
        "baryon_density",
        &SzLr::default(),
        ErrorBound::Rel(1e-3),
        &AmrCodecConfig::default(),
    )
    .unwrap();
    let key = store
        .put(&encode_artifact(
            &hier,
            "baryon_density",
            "szlr",
            &container,
        ))
        .unwrap();
    let fabs = (0..hier.num_levels())
        .map(|l| hier.box_array(l).len())
        .sum();
    (dir, key, fabs)
}

fn get(key: u64, deadline_ms: u32) -> Request {
    Request {
        op: Op::Get,
        trace: 0xE2E,
        key,
        deadline_ms,
        max_level: 0xFF,
    }
}

#[test]
fn serve_roundtrip_cache_and_deadline_statuses() {
    let (dir, key, fabs) = populate("rt");
    let server = start(ServeConfig {
        store_dir: dir.clone(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let cfg = ClientConfig::default();

    // 1. Full fetch: every level arrives, END frame present, fab count
    //    matches the hierarchy.
    let ex = exchange(addr, &get(key, 5_000), &cfg);
    assert_eq!(ex.outcome, Outcome::Ok, "exchange: {ex:?}");
    assert_eq!(ex.header.unwrap().status, Status::Ok);
    assert_eq!(ex.levels.len(), 2, "Nyx-tiny has two levels");
    let got_fabs: u64 = ex.levels.iter().map(|l| l.fabs).sum();
    assert_eq!(got_fabs as usize, fabs);
    assert!(ex.end.is_some(), "completed stream carries END");
    assert!(
        ex.levels[0].level < ex.levels[1].level,
        "coarse level first"
    );

    // 2. Repeat fetch hits the decoded-arena cache.
    let before = server.stats();
    let ex = exchange(addr, &get(key, 5_000), &cfg);
    assert_eq!(ex.outcome, Outcome::Ok);
    let after = server.stats();
    assert_eq!(
        after.cache_hits,
        before.cache_hits + 1,
        "second fetch must be a cache hit"
    );

    // 3. Zero deadline budget: typed Timeout, no data frames.
    let ex = exchange(addr, &get(key, 0), &cfg);
    assert_eq!(ex.outcome, Outcome::Timeout);
    assert!(ex.levels.is_empty());

    // 4. Unknown key: typed NotFound.
    let ex = exchange(addr, &get(0xBAD_C0FFEE, 5_000), &cfg);
    assert_eq!(ex.outcome, Outcome::NotFound);

    // 5. List: the key is enumerable.
    let ex = exchange(
        addr,
        &Request {
            op: Op::List,
            trace: 1,
            key: 0,
            deadline_ms: 5_000,
            max_level: 0,
        },
        &cfg,
    );
    assert_eq!(ex.outcome, Outcome::Ok);
    assert_eq!(ex.keys.unwrap(), vec![key]);

    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.post_deadline_responses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_with_typed_retry_later() {
    let (dir, key, _) = populate("shed");
    // One worker, queue depth 1: a parked connection occupies the worker,
    // one more waits in queue, the third must shed.
    let server = start(ServeConfig {
        store_dir: dir.clone(),
        workers: 1,
        queue_depth: 1,
        io_timeout_ms: 3_000,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Park a connection: connect, never send. The worker blocks in
    // read_frame until its socket timeout.
    let parked = std::net::TcpStream::connect(addr).unwrap();
    // Wait until the worker has taken it (queue drains to empty).
    std::thread::sleep(Duration::from_millis(200));
    let parked2 = std::net::TcpStream::connect(addr).unwrap(); // fills queue
    std::thread::sleep(Duration::from_millis(100));

    let ex = exchange(addr, &get(key, 2_000), &ClientConfig::default());
    assert_eq!(
        ex.outcome,
        Outcome::Shed,
        "third connection must shed: {ex:?}"
    );
    let h = ex.header.unwrap();
    assert_eq!(h.status, Status::RetryLater);
    assert!(h.retry_after_ms > 0, "shed reply carries a retry hint");

    drop(parked);
    drop(parked2);
    server.shutdown();
    let stats = server.join();
    assert!(stats.shed >= 1);
    assert_eq!(stats.panics, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_endpoint_reports_stages_slo_and_exemplars() {
    let (dir, key, _) = populate("stats");
    let server = start(ServeConfig {
        store_dir: dir.clone(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let cfg = ClientConfig::default();

    // Drive a little traffic first: one cold GET (full stage breakdown),
    // one warm GET (cache hit), one NotFound.
    assert_eq!(exchange(addr, &get(key, 5_000), &cfg).outcome, Outcome::Ok);
    assert_eq!(exchange(addr, &get(key, 5_000), &cfg).outcome, Outcome::Ok);
    assert_eq!(
        exchange(addr, &get(0xBAD_C0FFEE, 5_000), &cfg).outcome,
        Outcome::NotFound
    );

    let ex = exchange(
        addr,
        &Request {
            op: Op::Stats,
            trace: 0,
            key: 0,
            deadline_ms: 5_000,
            max_level: 0,
        },
        &cfg,
    );
    assert_eq!(ex.outcome, Outcome::Ok, "stats exchange: {ex:?}");
    let raw = ex.stats.expect("stats frame carries the snapshot");
    let doc = amrviz_json::Json::parse(&raw).expect("snapshot is valid JSON");
    assert_eq!(
        doc.get("schema").unwrap().as_str().unwrap(),
        amrviz_serve::STATS_SCHEMA
    );
    assert_eq!(doc.get("health").unwrap().as_str().unwrap(), "ok");

    // Stage-timing percentiles for the decode pipeline are present.
    let stages = doc.get("stages_us").unwrap();
    for stage in ["queue_wait", "store_read", "decode", "write"] {
        let s = stages
            .get(stage)
            .unwrap_or_else(|| panic!("stage {stage} missing: {raw}"));
        assert!(s.get("lifetime").unwrap().get("p99").is_some());
        assert!(s.get("w5m").unwrap().get("count").is_some());
    }
    // Cache hits skip store/decode: those stage counts reflect misses only.
    let decode_count = stages
        .get("decode")
        .unwrap()
        .get("lifetime")
        .unwrap()
        .get("count")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(decode_count, 1, "only the cold GET decoded");

    // Per-status latency, SLO report, and at least one exemplar whose
    // trace id resolves back to the requests we just made.
    assert!(doc.get("latency_us").unwrap().get("ok").is_some());
    let slo = doc.get("slo").unwrap();
    assert_eq!(slo.get("breached").unwrap().as_bool(), Some(false));
    assert_eq!(
        slo.get("windows").unwrap().as_arr().unwrap().len(),
        2,
        "5m and 1h burn windows"
    );
    let exemplars = doc.get("exemplars").unwrap().as_arr().unwrap();
    assert!(!exemplars.is_empty(), "tail reservoir retained a request");
    for e in exemplars {
        assert_eq!(
            e.get("trace").unwrap().as_str().unwrap(),
            "e2e",
            "exemplar trace resolves to the driving request"
        );
        assert!(e.get("stages_us").unwrap().get("queue_wait").is_some());
    }

    // STATS polls are monitoring traffic and NotFound is a client error:
    // neither moves the SLO windows' totals.
    let total_before: u64 = slo.get("windows").unwrap().as_arr().unwrap()[0]
        .get("total")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(
        total_before, 2,
        "two good GETs; not_found and stats polls excluded"
    );

    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.panics, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_torture_smoke_zero_violations() {
    // A short chaos run as a tier-1 regression net; the CI torture job runs
    // the full 300 iterations.
    let report = amrviz_serve::torture::run(&ServeTortureConfig {
        iters: 40,
        seed: 9,
        workers: 2,
        store_dir: temp_dir("torture_smoke"),
        max_peak_bytes: 1 << 30,
    });
    assert!(
        report.passed(),
        "torture violations: {:#?}",
        report.violations
    );
    assert_eq!(report.server.panics, 0);
    assert_eq!(report.server.post_deadline_responses, 0);
    assert!(report.server.requests > 0);
}
