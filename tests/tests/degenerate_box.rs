//! Regression coverage for degenerate refinement: a 1×1×1 fine box must
//! survive generation → compress → decompress → dual-cell extraction.
//!
//! This is the smallest box an AMR regridder can legally emit (AMReX
//! permits blocking_factor 1), and it exercises every per-box code path
//! at its extent-1 corner case: Lorenzo/regression blocks, interpolation
//! sweeps over single-sample dimensions, and dual-cell stitching where a
//! box contributes no interior dual cell at all.

#![allow(clippy::needless_range_loop)] // level-indexed loops mirror the math

use amrviz_amr::{AmrHierarchy, Box3, BoxArray, Geometry, IntVect};
use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, AmrCodecConfig, Compressor, ErrorBound,
    SzInterp, SzLr, ZfpLike,
};
use amrviz_viz::{extract_amr_isosurface, IsoMethod};

/// An 8³ coarse domain with two fine boxes: a normal 4³ block and a lone
/// 1×1×1 cell far away from it.
fn degenerate_hierarchy() -> AmrHierarchy {
    let domain = Box3::from_dims(8, 8, 8);
    let geom = Geometry::unit(domain);
    let coarse = BoxArray::single(domain);
    let mut fine = BoxArray::new(vec![Box3::new(
        IntVect::new(2, 2, 2),
        IntVect::new(5, 5, 5),
    )]);
    // The degenerate box: one fine cell, not aligned to any 2³ octet.
    fine.push(Box3::single(IntVect::new(13, 13, 13)));
    let mut h = AmrHierarchy::new(geom, vec![2], vec![coarse, fine]).unwrap();
    h.add_field_from_fn("density", |lev, iv| {
        let s = if lev == 0 { 2.0 } else { 1.0 };
        let (x, y, z) = (iv.x() as f64 * s, iv.y() as f64 * s, iv.z() as f64 * s);
        (0.37 * x).sin() + (0.53 * y).cos() + 0.11 * z
    })
    .unwrap();
    h
}

fn compressors() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(SzLr::default()),
        Box::new(SzInterp),
        Box::new(ZfpLike),
    ]
}

#[test]
fn single_cell_box_roundtrips_within_bound() {
    let h = degenerate_hierarchy();
    for comp in compressors() {
        let name = comp.name();
        let cfg = AmrCodecConfig::default();
        let c = compress_hierarchy_field(&h, "density", comp.as_ref(), ErrorBound::Rel(1e-3), &cfg)
            .unwrap_or_else(|e| panic!("{name}: compress failed: {e}"));
        let out = decompress_hierarchy_field(&h, &c, comp.as_ref(), &cfg)
            .unwrap_or_else(|e| panic!("{name}: decompress failed: {e}"));
        for lev in 0..h.num_levels() {
            let orig = h.field_level("density", lev).unwrap();
            for (ofab, dfab) in orig.fabs().iter().zip(out[lev].fabs()) {
                for (o, d) in ofab.data().iter().zip(dfab.data()) {
                    assert!(
                        (o - d).abs() <= c.abs_eb * (1.0 + 1e-12),
                        "{name}: lev {lev} |{o} - {d}| > {}",
                        c.abs_eb
                    );
                }
            }
        }
    }
}

#[test]
fn single_cell_box_survives_dual_cell_extraction() {
    let h = degenerate_hierarchy();
    let levels = &h.field("density").unwrap().levels;
    for method in IsoMethod::ALL {
        let res = extract_amr_isosurface(&h, levels, 1.0, method);
        // The surface crosses the domain; the coarse level must triangulate.
        assert!(
            res.level_meshes[0].num_triangles() > 0,
            "{}: no coarse triangles",
            method.label()
        );
    }
}

#[test]
fn skip_redundant_handles_single_cell_box() {
    let h = degenerate_hierarchy();
    let cfg = AmrCodecConfig {
        skip_redundant: true,
        restore_redundant: true,
    };
    for comp in compressors() {
        let name = comp.name();
        let c = compress_hierarchy_field(&h, "density", comp.as_ref(), ErrorBound::Rel(1e-3), &cfg)
            .unwrap_or_else(|e| panic!("{name}: compress failed: {e}"));
        let out = decompress_hierarchy_field(&h, &c, comp.as_ref(), &cfg)
            .unwrap_or_else(|e| panic!("{name}: decompress failed: {e}"));
        assert_eq!(out.len(), 2, "{name}: level count");
        // The coarse parent of the degenerate box is only 1/8 covered by
        // fine data, so it must keep its own encoded value — skipping it
        // as "redundant" would zero it (the outward-coarsening bug).
        let parent = IntVect::new(6, 6, 6);
        let orig = h
            .field_level("density", 0)
            .unwrap()
            .value_at(parent)
            .unwrap();
        let got = out[0].value_at(parent).unwrap();
        assert!(
            (orig - got).abs() <= c.abs_eb * (1.0 + 1e-12),
            "{name}: partially-covered coarse cell lost: {orig} vs {got} (eb {})",
            c.abs_eb
        );
    }
}
