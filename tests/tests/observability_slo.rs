//! Cross-crate tests for the request-centric observability stack: windowed
//! telemetry across slot-rotation boundaries under concurrent writers,
//! exemplar-reservoir determinism at different thread counts, and the SLO
//! burn-rate math the serve STATS endpoint reports.

use amrviz_obs::exemplar::{Exemplar, Reservoir};
use amrviz_obs::slo::{evaluate, SloSpec, WindowReading};
use amrviz_obs::window::WindowedHistogram;
use amrviz_serve::telemetry::{ReqTelemetry, StageTimes, SLOTS, SLOT_SECS};
use amrviz_serve::Status;
use std::sync::Mutex;

/// Concurrent writers recording on both sides of a slot-rotation boundary:
/// the windowed view must attribute every sample to the correct side, and
/// the lifetime view must see all of them — no samples lost or double
/// counted when a slot is lazily recycled.
#[test]
fn windowed_snapshot_across_rotation_under_concurrent_writers() {
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 500;
    // Tiny ring so the recording range (slots 0..=11 below) actually wraps.
    let h = Mutex::new(WindowedHistogram::with_slots(8));
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let h = &h;
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    // Interleave an "old" slot (4) and a "new" slot (11);
                    // 11 - 4 = 7 < 8 keeps both alive in the ring while
                    // forcing every slot in between to rotate.
                    let slot = if (w as u64 + i).is_multiple_of(2) {
                        4
                    } else {
                        11
                    };
                    h.lock().unwrap().record(slot, 100 + (i % 7));
                }
            });
        }
    });
    let h = h.lock().unwrap();
    let total = (WRITERS as u64) * PER_WRITER;
    assert_eq!(h.lifetime.count(), total, "lifetime sees every sample");
    // Window of 1 slot ending at 11: exactly the slot-11 half.
    assert_eq!(h.window_merged(11, 1).count(), total / 2);
    // Window covering slots 4..=11: everything.
    assert_eq!(h.window_merged(11, 8).count(), total);
    // A later window that excludes both recording slots is empty.
    assert_eq!(h.window_merged(30, 4).count(), 0);
}

/// The serve telemetry's SLO windows are slot-ring views: a failure burst
/// must age out of the short window while the long window still sees it.
#[test]
fn slo_windows_age_out_across_ring_rotation() {
    let t = ReqTelemetry::new(SloSpec::parse("avail>99").unwrap());
    let w5m_slots = 300 / SLOT_SECS; // 60
    for _ in 0..30 {
        t.record_at(0, Status::Timeout, 5_000, None, 0, 0);
    }
    for _ in 0..70 {
        t.record_at(w5m_slots + 10, Status::Ok, 200, None, 0, 0);
    }
    let r = t.slo_report_at(w5m_slots + 10);
    let (w5m, w1h) = (&r.windows[0], &r.windows[1]);
    assert_eq!(w5m.total, 70, "failure burst aged out of the 5m window");
    assert_eq!(w5m.good, 70);
    assert_eq!(w1h.total, 100, "1h window still remembers the burst");
    assert_eq!(w1h.good, 70);
    assert!(w1h.avail_exceeded && !w5m.avail_exceeded);
    assert!(
        !r.breached(),
        "AND-of-windows: recovered short window vetoes"
    );
    // Sanity: the ring is big enough for the 1h window.
    assert!(SLOTS as u64 * SLOT_SECS >= 3600);
}

/// Reservoir contents are a pure function of the offered *set*, so filling
/// it from a worker pool must give identical results at any thread count
/// and any interleaving.
#[test]
fn exemplar_reservoir_is_deterministic_across_thread_counts() {
    let offers: Vec<Exemplar> = (0..200u64)
        .map(|i| Exemplar {
            trace: i + 1,
            total_us: (i * 7919) % 10_000, // pseudo-shuffled durations
            label: format!("ok key={i:016x}"),
            stages: vec![("decode".into(), ((i * 7919) % 10_000) / 2)],
        })
        .collect();

    let fill = |threads: usize| -> Vec<(u64, u64)> {
        amrviz_par::set_threads(threads);
        let res = Mutex::new(Reservoir::new(8));
        // amrviz_par::run schedules dynamically, so the offer order the
        // reservoir sees genuinely differs between runs and thread counts.
        amrviz_par::run(offers.len(), |i| {
            res.lock().unwrap().offer(offers[i].clone());
        });
        res.into_inner()
            .unwrap()
            .snapshot()
            .iter()
            .map(|e| (e.total_us, e.trace))
            .collect()
    };

    let serial = fill(1);
    let parallel = fill(4);
    assert_eq!(serial, parallel, "same retained set at 1 and 4 threads");
    assert_eq!(serial.len(), 8);
    // Slowest first, strictly descending by (total_us, trace).
    assert!(serial.windows(2).all(|w| w[0] > w[1]));
}

/// Tail recording through ReqTelemetry keeps the same determinism: the
/// retained exemplars and their stage attribution do not depend on the
/// order concurrent workers finish.
#[test]
fn telemetry_exemplars_are_order_independent() {
    let record_all = |order: &[usize]| -> Vec<String> {
        let t = ReqTelemetry::new(SloSpec::default());
        for &i in order {
            let st = StageTimes {
                queue_wait_us: Some(5),
                decode_us: Some((i as u64) * 90),
                write_us: Some(10),
                ..StageTimes::default()
            };
            t.record_at(
                1,
                Status::Ok,
                (i as u64) * 100 + 7,
                Some(&st),
                i as u64 + 1,
                i as u64,
            );
        }
        let snap_json = t.snapshot_json(&amrviz_serve::StatsSnapshot::default(), 0, 1, 0, 0, 0);
        let doc = amrviz_json::Json::parse(&snap_json).unwrap();
        doc.get("exemplars")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|e| {
                format!(
                    "{}:{}",
                    e.get("trace").unwrap().as_str().unwrap(),
                    e.get("total_us").unwrap().as_u64().unwrap()
                )
            })
            .collect()
    };
    let fwd: Vec<usize> = (0..50).collect();
    let rev: Vec<usize> = (0..50).rev().collect();
    assert_eq!(record_all(&fwd), record_all(&rev));
}

/// Burn-rate math end to end against hand-computed numbers — the same
/// numbers the golden journal fixture (tests/golden/slo_fixture.jsonl)
/// encodes, so CI's `amrviz stats --slo` greps and this test agree on one
/// ground truth.
#[test]
fn burn_rate_matches_fixture_numbers() {
    // 18 good of 20 at a 99% target: 10% bad over a 1% budget = burn 10.
    let spec = SloSpec::parse("p99<200,avail>99").unwrap();
    let reading = WindowReading {
        label: "journal",
        secs: 0,
        good: 18,
        total: 20,
        p99_us: 250_000,
    };
    let r = evaluate(&spec, &[reading]);
    assert!((r.windows[0].burn - 10.0).abs() < 1e-9);
    assert!(r.avail_breach && r.latency_breach && r.breached());
    let json = r.to_json();
    assert!(json.contains("\"burn\":10.00"), "{json}");
    assert!(json.contains("\"avail_breach\":true"), "{json}");

    // Same traffic against a laxer spec: no breach.
    let lax = SloSpec::parse("p99<500,avail>80").unwrap();
    let r = evaluate(
        &lax,
        &[WindowReading {
            label: "journal",
            secs: 0,
            good: 18,
            total: 20,
            p99_us: 250_000,
        }],
    );
    assert!(!r.breached());
}
