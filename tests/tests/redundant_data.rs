//! The redundant-coarse-data story across crates (paper §2.2 + Fig. 1c):
//! omitting it boosts compression but the dual-cell method needs it, and
//! restriction-based restoration keeps both properties.

#![allow(clippy::needless_range_loop)] // level-indexed loops mirror the math

use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, AmrCodecConfig, ErrorBound,
};
use amrviz_core::experiment::CompressorKind;
use amrviz_core::prelude::*;
use amrviz_viz::{extract_amr_isosurface, interface_gap};

#[test]
fn skip_and_restore_keeps_dual_cell_functional() {
    let built = Scenario::new(Application::Warpx, Scale::Tiny, 11).build();
    let field = built.spec.eval_field();
    let comp = CompressorKind::SzInterp.instance();

    // Compress without redundant data, restore it by restriction.
    let cfg = AmrCodecConfig {
        skip_redundant: true,
        restore_redundant: true,
    };
    let compressed = compress_hierarchy_field(
        &built.hierarchy,
        field,
        comp.as_ref(),
        ErrorBound::Rel(1e-3),
        &cfg,
    )
    .unwrap();
    let levels =
        decompress_hierarchy_field(&built.hierarchy, &compressed, comp.as_ref(), &cfg).unwrap();

    // Dual-cell + redundant data still closes the gap on restored data.
    let geom = built.hierarchy.geometry();
    let gap_of = |method: IsoMethod| {
        let res = extract_amr_isosurface(&built.hierarchy, &levels, built.iso, method);
        interface_gap(
            &res.level_meshes[1],
            &res.level_meshes[0],
            geom.prob_lo,
            geom.prob_hi,
            1e-9,
        )
        .unwrap()
    };
    let plain = gap_of(IsoMethod::DualCell);
    let fixed = gap_of(IsoMethod::DualCellRedundant);
    assert!(
        fixed.mean_gap < 0.5 * plain.mean_gap,
        "restored redundant data failed to close the gap: {} vs {}",
        fixed.mean_gap,
        plain.mean_gap
    );
}

#[test]
fn skip_never_hurts_unique_cells() {
    // Omission only affects covered coarse cells; unique cells must honor
    // the bound exactly as without skipping.
    for app in Application::ALL {
        let built = Scenario::new(app, Scale::Tiny, 13).build();
        let field = app.eval_field();
        let comp = CompressorKind::SzLr.instance();
        let cfg = AmrCodecConfig {
            skip_redundant: true,
            restore_redundant: false,
        };
        let compressed = compress_hierarchy_field(
            &built.hierarchy,
            field,
            comp.as_ref(),
            ErrorBound::Rel(1e-3),
            &cfg,
        )
        .unwrap();
        let levels =
            decompress_hierarchy_field(&built.hierarchy, &compressed, comp.as_ref(), &cfg).unwrap();
        let covered = built.hierarchy.covered_mask(0);
        let orig = built.hierarchy.field_level(field, 0).unwrap();
        for (ofab, dfab) in orig.fabs().iter().zip(levels[0].fabs()) {
            for (cell, o) in ofab.iter() {
                if covered.get(cell) {
                    continue; // omitted on purpose
                }
                let d = dfab.get(cell);
                assert!(
                    (o - d).abs() <= compressed.abs_eb * (1.0 + 1e-12),
                    "{app:?}: unique cell {cell:?} violated the bound"
                );
            }
        }
    }
}

#[test]
fn restored_cells_match_restriction_of_fine_data() {
    let built = Scenario::new(Application::Nyx, Scale::Tiny, 19).build();
    let field = built.spec.eval_field();
    let comp = CompressorKind::SzInterp.instance();
    let cfg = AmrCodecConfig {
        skip_redundant: true,
        restore_redundant: true,
    };
    let compressed = compress_hierarchy_field(
        &built.hierarchy,
        field,
        comp.as_ref(),
        ErrorBound::Rel(1e-3),
        &cfg,
    )
    .unwrap();
    let levels =
        decompress_hierarchy_field(&built.hierarchy, &compressed, comp.as_ref(), &cfg).unwrap();

    // Because original coarse = restriction(original fine) by construction,
    // restored coarse = restriction(decompressed fine) must sit within the
    // error bound of the original coarse values.
    let covered = built.hierarchy.covered_mask(0);
    let orig = built.hierarchy.field_level(field, 0).unwrap();
    let mut checked = 0usize;
    for (ofab, dfab) in orig.fabs().iter().zip(levels[0].fabs()) {
        for (cell, o) in ofab.iter() {
            if !covered.get(cell) {
                continue;
            }
            let d = dfab.get(cell);
            assert!(
                (o - d).abs() <= compressed.abs_eb * (1.0 + 1e-9),
                "restored cell {cell:?}: |{o} - {d}| > {}",
                compressed.abs_eb
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "too few covered cells exercised: {checked}");
}
