//! End-to-end tests of the `amrviz bench` harness: a quick Tiny-scale run
//! must emit a schema-complete BENCH document (times, CR/PSNR/SSIM,
//! peak memory, and p50/p99 latency histograms per cell), compare cleanly
//! against itself, and *fail* against a doctored baseline — in both
//! directions, since the time gate is symmetric.

use std::sync::Mutex;

use amrviz_bench::harness::{
    compare, run_bench, write_bench, BenchConfig, DEFAULT_THRESHOLD_PCT, SCHEMA,
};
use amrviz_core::prelude::*;
use amrviz_json::Json;

// Install the counting allocator so peak_alloc_bytes is measured for real,
// exactly as in the `amrviz` binary.
#[global_allocator]
static ALLOC: amrviz_obs::mem::CountingAlloc = amrviz_obs::mem::CountingAlloc;

/// `run_bench` sweeps the process-global thread pool and obs recorder.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_out(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("amrviz_bench_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One-cell-per-(app, compressor) Tiny matrix — the smallest real run.
fn tiny_config(out: std::path::PathBuf) -> BenchConfig {
    BenchConfig {
        scale: Scale::Tiny,
        thread_counts: vec![1],
        rel_ebs: vec![1e-3],
        name: "selftest".to_string(),
        out_dir: out,
        quick: true,
    }
}

#[test]
fn quick_bench_emits_complete_schema_and_gates() {
    let _g = lock();
    let out = tmp_out("schema");
    let doc = run_bench(&tiny_config(out.clone()));

    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
    assert_eq!(doc.get("quick").and_then(Json::as_bool), Some(true));
    assert!(doc.get("git").and_then(Json::as_str).is_some());
    assert_eq!(doc.get("mem_profile").and_then(Json::as_bool), Some(true));

    let cells = doc.get("cells").and_then(Json::as_arr).expect("cells");
    // 2 apps × 3 compressors × 1 thread count × 1 eb, plus the two
    // recipe extreme-corner cells (L4 scattered, degenerate) × 1 eb.
    assert_eq!(cells.len(), 8);
    assert_eq!(
        cells
            .iter()
            .filter(|c| {
                let app = c.get("app").and_then(Json::as_str).unwrap();
                app.contains("scattered") || app.contains("degenerate")
            })
            .count(),
        2,
        "corner recipe cells missing from the matrix"
    );
    let mut compressors = std::collections::BTreeSet::new();
    for cell in cells {
        let comp = cell.get("compressor").and_then(Json::as_str).unwrap();
        compressors.insert(comp.to_string());
        let num = |k: &str| {
            cell.get(k)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("cell missing {k}: {cell:?}"))
        };
        assert!(num("compress_seconds") >= 0.0);
        assert!(num("decompress_seconds") >= 0.0);
        assert!(num("extract_seconds") >= 0.0);
        assert!(num("compression_ratio") > 1.0, "lossy CR must beat 1:1");
        assert!(num("psnr_db") > 10.0);
        let ssim = num("ssim");
        assert!(ssim > 0.0 && ssim <= 1.0, "ssim={ssim}");
        assert!(num("triangles") > 0.0, "extraction produced no mesh");
        // The counting allocator is installed in this binary, so per-cell
        // peak memory is real and nonzero.
        assert!(num("peak_alloc_bytes") > 0.0);

        // Per-cell latency/size histograms with percentiles.
        let hists = cell.get("histograms").expect("histograms object");
        for name in [
            "compress.piece_us",
            "compress.blob_bytes",
            "decompress.piece_us",
        ] {
            let h = hists
                .get(name)
                .unwrap_or_else(|| panic!("histogram {name} missing: {hists:?}"));
            let hv = |k: &str| h.get(k).and_then(Json::as_f64).unwrap();
            assert!(hv("count") > 0.0, "{name} recorded nothing");
            assert!(hv("min") as u64 <= hv("max") as u64);
            assert!(hv("p50") <= hv("p99") + 1e-9, "{name}: p50 > p99");
            assert!(hv("p99") <= hv("max") * 1.0 + 1e-9);
        }
    }
    assert_eq!(
        compressors.into_iter().collect::<Vec<_>>(),
        vec!["interp", "szlr", "zfp-like"],
        "matrix must sweep all three paper compressors"
    );

    // The file artifact: BENCH_<name>.json, parseable, identical content.
    let path = write_bench(&doc, &out).unwrap();
    assert_eq!(path.file_name().unwrap(), "BENCH_selftest.json");
    let reread = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(reread.to_string_pretty(), doc.to_string_pretty());

    // Self-comparison is clean: same doc on both sides, zero regressions.
    let cmp = compare(&doc, &reread, DEFAULT_THRESHOLD_PCT);
    assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    assert!(cmp.unmatched.is_empty());
    assert!(!cmp.lines.is_empty());
    let rendered = cmp.render(DEFAULT_THRESHOLD_PCT);
    assert!(rendered.contains("OK: no metric outside"), "{rendered}");

    // A doctored baseline — timings inflated far past the floor so the run
    // under test looks impossibly fast — must FAIL the symmetric gate.
    let doctored_cells: Vec<Json> = cells
        .iter()
        .map(|c| {
            let mut c = c.clone();
            c.set("compress_seconds", 120.0)
                .set("decompress_seconds", 120.0);
            c
        })
        .collect();
    let mut doctored = doc.clone();
    doctored.set("cells", Json::Arr(doctored_cells));
    let cmp = compare(&doc, &doctored, DEFAULT_THRESHOLD_PCT);
    assert!(
        cmp.regressions
            .iter()
            .any(|r| r.kind.starts_with("faster than baseline")),
        "doctored baseline must be caught: {:?}",
        cmp.regressions
    );
    let rendered = cmp.render(DEFAULT_THRESHOLD_PCT);
    assert!(rendered.contains("FAIL"), "{rendered}");

    // And the mirror image — this run doctored to be slower — fails too.
    let cmp = compare(&doctored, &doc, DEFAULT_THRESHOLD_PCT);
    assert!(
        cmp.regressions.iter().any(|r| r.kind == "slower"),
        "{:?}",
        cmp.regressions
    );

    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn bench_leaves_global_state_clean() {
    let _g = lock();
    let prior_threads = amrviz_par::threads();
    let was_enabled = amrviz_obs::is_enabled();
    let out = tmp_out("state");
    let mut cfg = tiny_config(out.clone());
    cfg.thread_counts = vec![2];
    let _ = run_bench(&cfg);
    assert_eq!(
        amrviz_par::threads(),
        prior_threads,
        "run_bench must restore the worker-pool size"
    );
    assert_eq!(amrviz_obs::is_enabled(), was_enabled);
    assert!(
        amrviz_obs::events_snapshot().is_empty(),
        "run_bench must leave the recorder reset"
    );
    assert!(amrviz_obs::histograms_snapshot().is_empty());
    std::fs::remove_dir_all(&out).ok();
}
