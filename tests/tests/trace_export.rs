//! Chrome-trace export of a real pipeline run, validated by parsing the
//! JSON back with `amrviz-json`: the trace must be a well-formed
//! trace-event document with internally consistent events (durations fit
//! inside their parents, timestamps are sane, thread ids are present, and
//! no unbalanced B/E pairs exist — the exporter emits complete `X`
//! events precisely so there is nothing to mismatch).

use std::sync::Mutex;

use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, AmrCodecConfig, ErrorBound,
};
use amrviz_core::experiment::CompressorKind;
use amrviz_core::prelude::*;
use amrviz_integration_tests::warpx_like;
use amrviz_json::Json;
use amrviz_viz::extract_amr_isosurface;

/// The obs recorder is process-global; tests in this binary serialize.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs a small compress → decompress → extract pipeline with the recorder
/// on and returns the parsed chrome trace.
fn traced_pipeline_doc() -> Json {
    amrviz_obs::reset();
    amrviz_obs::enable();
    let built = warpx_like(42);
    let field = built.spec.eval_field();
    let cfg = AmrCodecConfig::default();
    let comp = CompressorKind::SzLr.instance();
    {
        let _root = amrviz_obs::span!("pipeline");
        let c = compress_hierarchy_field(
            &built.hierarchy,
            field,
            comp.as_ref(),
            ErrorBound::Rel(1e-3),
            &cfg,
        )
        .unwrap();
        let levels = decompress_hierarchy_field(&built.hierarchy, &c, comp.as_ref(), &cfg).unwrap();
        let _ = extract_amr_isosurface(&built.hierarchy, &levels, built.iso, IsoMethod::Resampling);
    }
    amrviz_obs::disable();
    let text = amrviz_obs::chrome::chrome_trace_json();
    amrviz_obs::reset();
    Json::parse(&text).expect("chrome trace must be valid JSON")
}

#[test]
fn pipeline_chrome_trace_is_well_formed() {
    let _g = lock();
    let doc = traced_pipeline_doc();
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(
        !events.is_empty(),
        "an instrumented pipeline must emit events"
    );

    let mut n_begin = 0u32;
    let mut n_end = 0u32;
    let mut n_complete = 0u32;
    let mut tids = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph present");
        match ph {
            "B" => n_begin += 1,
            "E" => n_end += 1,
            "X" => {
                n_complete += 1;
                let ts = ev.get("ts").and_then(Json::as_f64).expect("ts present");
                let dur = ev.get("dur").and_then(Json::as_f64).expect("dur present");
                assert!(ts >= 0.0, "negative timestamp {ts}");
                assert!(dur >= 0.0, "negative duration {dur}");
                assert!(
                    ev.get("name").and_then(Json::as_str).is_some(),
                    "X event without a name"
                );
                let tid = ev.get("tid").and_then(Json::as_f64).expect("tid present");
                tids.insert(tid as u64);
            }
            "M" | "C" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    // Begin/end events must pair up; the exporter uses complete (X) events
    // exclusively, so both counts are zero — but if that ever changes they
    // still have to balance.
    assert_eq!(n_begin, n_end, "unbalanced B/E pairs");
    assert!(n_complete > 0, "no complete events");
    assert!(!tids.is_empty(), "no thread ids recorded");

    // The pipeline root span is in the trace and spans every child: each
    // X event on the root's thread nests inside [root.ts, root.ts+dur].
    let root = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("pipeline"))
        .expect("root span exported");
    let root_ts = root.get("ts").and_then(Json::as_f64).unwrap();
    let root_dur = root.get("dur").and_then(Json::as_f64).unwrap();
    let root_tid = root.get("tid").and_then(Json::as_f64).unwrap();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        if ev.get("tid").and_then(Json::as_f64) != Some(root_tid) {
            continue;
        }
        let ts = ev.get("ts").and_then(Json::as_f64).unwrap();
        let dur = ev.get("dur").and_then(Json::as_f64).unwrap();
        assert!(
            ts >= root_ts && ts + dur <= root_ts + root_dur + 1.0,
            "event at ts={ts} dur={dur} escapes the root span [{root_ts}, {}]",
            root_ts + root_dur
        );
    }
}

#[test]
fn trace_timestamps_are_monotonic_per_thread() {
    let _g = lock();
    let doc = traced_pipeline_doc();
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    // Group X events by tid; within a thread, sorted-by-ts events must be
    // non-decreasing (trivially true after sorting) *and* every start must
    // be >= the first event's start — i.e. no timestamp precedes the
    // recorder epoch.
    let mut by_tid: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let tid = ev.get("tid").and_then(Json::as_f64).unwrap() as u64;
        let ts = ev.get("ts").and_then(Json::as_f64).unwrap();
        by_tid.entry(tid).or_default().push(ts);
    }
    for (tid, mut ts) in by_tid {
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(ts[0] >= 0.0, "thread {tid} starts before the epoch");
        for w in ts.windows(2) {
            assert!(w[1] >= w[0], "thread {tid} timestamps not monotonic");
        }
    }

    // The process/thread metadata names are present so the trace renders
    // with labels in chrome://tracing.
    assert!(
        events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("name").and_then(Json::as_str) == Some("thread_name")
        }),
        "missing thread_name metadata events"
    );
}
