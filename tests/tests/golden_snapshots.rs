//! Golden snapshots of the pipeline's observable outputs: per-method mesh
//! fingerprints (triangle count + FNV-1a of the canonicalized geometry)
//! and fixed-precision compression figures (CR, PSNR).
//!
//! Any intended change to extraction or compression output is re-blessed
//! with `BLESS=1 cargo test -p amrviz-integration-tests golden`; an
//! unintended change fails loudly with a diff.

use std::fmt::Write as _;

use amrviz_compress::{compress_hierarchy_field, AmrCodecConfig, ErrorBound};
use amrviz_core::experiment::{run_compression, CompressorKind};
use amrviz_core::prelude::*;
use amrviz_integration_tests::{assert_golden, mesh_fingerprint, nyx_like, warpx_like};
use amrviz_viz::extract_amr_isosurface;

fn mesh_snapshot(built: &BuiltScenario) -> String {
    let field = built.spec.eval_field();
    let levels = &built.hierarchy.field(field).unwrap().levels;
    let mut out = String::new();
    for method in IsoMethod::ALL {
        let res = extract_amr_isosurface(&built.hierarchy, levels, built.iso, method);
        writeln!(
            out,
            "{} triangles={} fnv={:016x}",
            method.label(),
            res.total_triangles(),
            mesh_fingerprint(&res.into_combined()),
        )
        .unwrap();
    }
    out
}

fn compression_snapshot(built: &BuiltScenario) -> String {
    let mut out = String::new();
    for kind in CompressorKind::PAPER {
        let run = run_compression(built, kind, 1e-3).unwrap();
        // Fixed precision: loose enough to absorb nothing — the pipeline is
        // bit-deterministic — but keeps the file human-readable.
        writeln!(
            out,
            "{} cr={:.3} psnr_db={:.2} max_abs_err={:.6e}",
            kind.label(),
            run.compression_ratio,
            run.psnr_db,
            run.max_abs_error,
        )
        .unwrap();
    }
    // Compressed stream size is the strongest codec fingerprint.
    let field = built.spec.eval_field();
    for kind in CompressorKind::PAPER {
        let comp = kind.instance();
        let c = compress_hierarchy_field(
            &built.hierarchy,
            field,
            comp.as_ref(),
            ErrorBound::Rel(1e-3),
            &AmrCodecConfig::default(),
        )
        .unwrap();
        writeln!(
            out,
            "{} stream_bytes={} stream_fnv={:016x}",
            kind.label(),
            c.to_bytes().len(),
            amrviz_integration_tests::fnv1a(&c.to_bytes()),
        )
        .unwrap();
    }
    out
}

#[test]
fn warpx_mesh_goldens() {
    assert_golden("warpx_meshes.txt", &mesh_snapshot(&warpx_like(42)));
}

#[test]
fn nyx_mesh_goldens() {
    assert_golden("nyx_meshes.txt", &mesh_snapshot(&nyx_like(42)));
}

#[test]
fn warpx_compression_goldens() {
    assert_golden(
        "warpx_compression.txt",
        &compression_snapshot(&warpx_like(42)),
    );
}

#[test]
fn nyx_compression_goldens() {
    assert_golden("nyx_compression.txt", &compression_snapshot(&nyx_like(42)));
}
