//! Property-based round-trip tests: on randomized multi-level hierarchies
//! the reconstruction error of every cell — including cells on box
//! boundaries, where predictors have one-sided context — stays within the
//! advertised absolute bound, for both paper compressors.
//!
//! Two samplers drive the property: a free-form random hierarchy builder
//! (arbitrary nesting, chopped boxes) and the recipe-space sampler from
//! `crates/recipe`, whose failures report the canonical recipe string
//! that regenerates the offending scenario.

#![allow(clippy::needless_range_loop)] // level-indexed loops mirror the math

use amrviz_amr::{AmrHierarchy, Box3, BoxArray, Geometry, IntVect};
use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, AmrCodecConfig, Compressor, ErrorBound,
    SzInterp, SzLr,
};
use amrviz_recipe::ScenarioSpec;
use amrviz_rng::{check, Rng};

/// A random 2- or 3-level hierarchy. Fine levels are nested boxes chopped
/// into several fabs, so round-trips cross interior box boundaries.
fn random_hierarchy(rng: &mut Rng) -> AmrHierarchy {
    let n = 8 + 2 * rng.range_usize(0, 4); // coarse domain 8³..16³
    let geom = Geometry::unit(Box3::from_dims(n, n, n));
    let levels = 2 + rng.range_usize(0, 1);

    let mut ref_ratios = Vec::new();
    let mut box_arrays = vec![BoxArray::single(geom.domain)];
    let mut parent = geom.domain;
    for _ in 1..levels {
        let r = 2;
        // A random sub-box of the parent, at least 2 cells in each axis.
        let lo = IntVect::new(
            rng.range_i64(parent.lo()[0], parent.hi()[0] - 2),
            rng.range_i64(parent.lo()[1], parent.hi()[1] - 2),
            rng.range_i64(parent.lo()[2], parent.hi()[2] - 2),
        );
        let hi = IntVect::new(
            rng.range_i64(lo[0] + 1, parent.hi()[0]),
            rng.range_i64(lo[1] + 1, parent.hi()[1]),
            rng.range_i64(lo[2] + 1, parent.hi()[2]),
        );
        let fine = Box3::new(lo, hi).refine(r);
        ref_ratios.push(r);
        // Chop so each level holds several boxes — exercising per-box
        // compression and box-boundary cells.
        box_arrays.push(
            BoxArray::single(fine)
                .chop_to_max_cells((fine.num_cells() / (1 + rng.range_usize(1, 4))).max(8)),
        );
        parent = fine;
    }
    AmrHierarchy::new(geom, ref_ratios, box_arrays).expect("nested construction is valid")
}

/// Deterministic per-cell jitter in [-1, 1]: a splitmix64-style finalizer
/// over (level, cell, salt). Pure, so it is safe under the parallel
/// `from_fn` fan-out and identical at any thread count.
fn cell_jitter(lev: usize, iv: IntVect, salt: u64) -> f64 {
    let mut z = salt
        ^ (lev as u64).wrapping_mul(0x9e3779b97f4a7c15)
        ^ (iv[0] as u64).wrapping_mul(0xbf58476d1ce4e5b9)
        ^ (iv[1] as u64).wrapping_mul(0x94d049bb133111eb)
        ^ (iv[2] as u64).wrapping_mul(0xd6e8feb86659fd93);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
}

/// A random field: smooth waves plus cell-level noise, with a random scale
/// so both relative and absolute bounds get exercised across magnitudes.
fn add_random_field(h: &mut AmrHierarchy, rng: &mut Rng) {
    let amp = 10f64.powi(rng.range_i64(-3, 3) as i32);
    let kx = rng.range_f64(0.1, 3.0);
    let ky = rng.range_f64(0.1, 3.0);
    let kz = rng.range_f64(0.1, 3.0);
    let noise = rng.range_f64(0.0, 0.3);
    let salt = rng.next_u64();
    let g = *h.geometry();
    let num_levels = h.num_levels();
    let ratios: Vec<i64> = (0..num_levels).map(|l| h.ratio_to_level0(l)).collect();
    h.add_field_from_fn("f", move |lev, iv| {
        let p = g.cell_center(iv, ratios[lev]);
        let smooth = (kx * p[0]).sin() + (ky * p[1] + 0.3).cos() + (kz * p[2]).sin();
        amp * (smooth + noise * cell_jitter(lev, iv, salt))
    })
    .expect("field fits hierarchy");
}

fn compressors() -> Vec<(&'static str, Box<dyn Compressor>)> {
    vec![
        ("SZ-L/R", Box::new(SzLr::default())),
        ("SZ-Itp", Box::new(SzInterp)),
    ]
}

fn assert_bound_holds(h: &AmrHierarchy, bound: ErrorBound) {
    assert_bound_holds_on(h, "f", bound, "");
}

/// The round-trip property itself. `repro` is appended to failure
/// messages — recipe-sampled scenarios pass their canonical recipe string
/// so a failure names the exact scenario to regenerate.
fn assert_bound_holds_on(h: &AmrHierarchy, field: &str, bound: ErrorBound, repro: &str) {
    let cfg = AmrCodecConfig::default();
    for (name, comp) in compressors() {
        let c =
            compress_hierarchy_field(h, field, comp.as_ref(), bound, &cfg).expect("field exists");
        let levels =
            decompress_hierarchy_field(h, &c, comp.as_ref(), &cfg).expect("own stream decodes");
        let tol = c.abs_eb * (1.0 + 1e-12);
        for lev in 0..h.num_levels() {
            let orig = h.field_level(field, lev).unwrap();
            for (bi, (ofab, dfab)) in orig.fabs().iter().zip(levels[lev].fabs()).enumerate() {
                let bx = ofab.box3();
                for ((cell, o), d) in ofab.iter().zip(dfab.data()) {
                    let on_boundary =
                        (0..3).any(|a| cell[a] == bx.lo()[a] || cell[a] == bx.hi()[a]);
                    assert!(
                        (o - d).abs() <= tol,
                        "{name} lev {lev} box {bi} cell {cell:?} \
                         (boundary: {on_boundary}): |{o} - {d}| > {tol}{}{repro}",
                        if repro.is_empty() { "" } else { "\n  recipe: " },
                    );
                }
            }
        }
    }
}

#[test]
fn random_hierarchies_respect_relative_bound() {
    check(0xF00D, 24, |rng| {
        let mut h = random_hierarchy(rng);
        add_random_field(&mut h, rng);
        let eb = 10f64.powi(-(rng.range_i64(2, 4) as i32));
        assert_bound_holds(&h, ErrorBound::Rel(eb));
    });
}

#[test]
fn random_hierarchies_respect_absolute_bound() {
    check(0xF00E, 24, |rng| {
        let mut h = random_hierarchy(rng);
        add_random_field(&mut h, rng);
        assert_bound_holds(&h, ErrorBound::Abs(rng.range_f64(1e-4, 1e-1)));
    });
}

#[test]
fn recipe_sampled_scenarios_respect_the_bound() {
    // The recipe-space sampler covers what the free-form builder cannot:
    // named topologies (slab, scattered, degenerate single-cell boxes),
    // anisotropic domains, shocks. Any failure prints the canonical
    // recipe string, which `expand` turns back into this exact spec.
    check(0xF010, 6, |rng| {
        let spec = ScenarioSpec::sample(rng);
        let h = spec.generate();
        assert_bound_holds_on(&h, spec.eval_field(), ErrorBound::Rel(1e-3), &spec.recipe);
    });
}

#[test]
fn boundary_cells_are_exercised() {
    // Sanity-check the generator itself: multi-box levels exist, so the
    // boundary-cell condition in `assert_bound_holds` is not vacuous.
    check(0xF00F, 16, |rng| {
        let h = random_hierarchy(rng);
        let multi_box_levels = (1..h.num_levels())
            .filter(|&l| h.box_array(l).len() > 1)
            .count();
        // Not every draw chops (tiny fine regions may fit one box), but the
        // construction must at least sometimes produce several boxes; assert
        // the structural invariants that make the round-trip meaningful.
        for l in 0..h.num_levels() {
            assert!(h.box_array(l).num_cells() > 0);
            assert!(h.box_array(l).validate_disjoint().is_ok());
        }
        let _ = multi_box_levels;
    });
}
