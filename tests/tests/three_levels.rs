//! Three-level hierarchies: the pipelines must generalize beyond the
//! paper's two-level datasets (AMReX runs commonly use 3+ levels).

#![allow(clippy::needless_range_loop)] // level-indexed loops mirror the math

use amrviz_amr::{AmrHierarchy, Box3, BoxArray, Geometry, IntVect};
use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, AmrCodecConfig, ErrorBound, SzInterp,
};
use amrviz_viz::{extract_amr_isosurface, IsoMethod};

/// 16³ root, 2× nested refinements toward the +x corner, sphere field.
fn three_level() -> AmrHierarchy {
    let geom = Geometry::unit(Box3::from_dims(16, 16, 16));
    let mut h = AmrHierarchy::new(
        geom,
        vec![2, 2],
        vec![
            BoxArray::single(geom.domain),
            // Level 1 covers x ∈ [8,16) of the coarse grid (refined: 16..31).
            BoxArray::single(Box3::new(IntVect::new(16, 0, 0), IntVect::new(31, 31, 31))),
            // Level 2 covers the x ∈ [12,16) strip of level 1 (indices 48..63).
            BoxArray::single(Box3::new(IntVect::new(48, 0, 0), IntVect::new(63, 63, 63))),
        ],
    )
    .unwrap();
    let g = *h.geometry();
    h.add_field_from_fn("f", move |lev, iv| {
        let ratio = [1, 2, 4][lev];
        let p = g.cell_center(iv, ratio);
        0.35 - ((p[0] - 0.55).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt()
    })
    .unwrap();
    h
}

#[test]
fn masks_and_densities_partition() {
    let h = three_level();
    let total: f64 = (0..3).map(|l| h.level_density(l)).sum();
    assert!((total - 1.0).abs() < 1e-12);
    // The middle level is covered by level 2 in its +x strip.
    let covered1 = h.covered_mask(1);
    assert!(covered1.any());
    assert!(covered1.get(IntVect::new(28, 4, 4)));
    assert!(!covered1.get(IntVect::new(18, 4, 4)));
}

#[test]
fn compression_roundtrips_across_three_levels() {
    let h = three_level();
    let comp = SzInterp;
    let cfg = AmrCodecConfig::default();
    let c = compress_hierarchy_field(&h, "f", &comp, ErrorBound::Rel(1e-3), &cfg).unwrap();
    let levels = decompress_hierarchy_field(&h, &c, &comp, &cfg).unwrap();
    assert_eq!(levels.len(), 3);
    for lev in 0..3 {
        let orig = h.field_level("f", lev).unwrap();
        for (ofab, dfab) in orig.fabs().iter().zip(levels[lev].fabs()) {
            for (o, d) in ofab.data().iter().zip(dfab.data()) {
                assert!((o - d).abs() <= c.abs_eb * (1.0 + 1e-12));
            }
        }
    }
}

#[test]
fn skip_redundant_works_on_middle_levels() {
    let h = three_level();
    let comp = SzInterp;
    let cfg = AmrCodecConfig {
        skip_redundant: true,
        restore_redundant: true,
    };
    let c = compress_hierarchy_field(&h, "f", &comp, ErrorBound::Rel(1e-3), &cfg).unwrap();
    let levels = decompress_hierarchy_field(&h, &c, &comp, &cfg).unwrap();
    // Level 1's covered strip must be restored from level 2 data within eb
    // (the original was built consistently? here fields are analytic, so
    // restriction differs from the analytic midpoint — allow a coarse-cell
    // scale tolerance instead).
    let covered1 = h.covered_mask(1);
    let orig1 = h.field_level("f", 1).unwrap();
    let h1 = h.geometry().cell_size_at(2)[0];
    for (ofab, dfab) in orig1.fabs().iter().zip(levels[1].fabs()) {
        for (cell, o) in ofab.iter() {
            let d = dfab.get(cell);
            if covered1.get(cell) {
                // Restriction of the analytic field ≈ cell value to O(h²),
                // plus the compression bound.
                assert!(
                    (o - d).abs() <= h1 + c.abs_eb,
                    "restored {cell:?}: {o} vs {d}"
                );
            } else {
                assert!((o - d).abs() <= c.abs_eb * (1.0 + 1e-12));
            }
        }
    }
}

#[test]
fn extraction_produces_three_level_surfaces() {
    let h = three_level();
    let levels = &h.field("f").unwrap().levels;
    // Iso value crossing all three regions: the sphere around x=0.55 with
    // radius 0.35 spans the whole domain.
    for method in IsoMethod::ALL {
        let res = extract_amr_isosurface(&h, levels, 0.0, method);
        assert_eq!(res.level_meshes.len(), 3);
        let nonempty = res
            .level_meshes
            .iter()
            .filter(|m| m.num_triangles() > 0)
            .count();
        assert!(
            nonempty >= 2,
            "{method:?}: only {nonempty} levels produced triangles"
        );
        assert!(res.total_triangles() > 100);
    }
}
