//! Determinism and stream-stability guarantees: the same seed must yield
//! bit-identical data, compressed streams, and extracted meshes — a
//! prerequisite for reproducible experiment tables.

#![allow(clippy::needless_range_loop)] // level-indexed loops mirror the math

use amrviz_compress::{compress_hierarchy_field, AmrCodecConfig, ErrorBound};
use amrviz_core::experiment::CompressorKind;
use amrviz_core::prelude::*;
use amrviz_viz::extract_amr_isosurface;

#[test]
fn same_seed_same_compressed_bytes() {
    for app in Application::ALL {
        let a = Scenario::new(app, Scale::Tiny, 123).build();
        let b = Scenario::new(app, Scale::Tiny, 123).build();
        let field = app.eval_field();
        for kind in CompressorKind::PAPER {
            let comp = kind.instance();
            let cfg = AmrCodecConfig::default();
            let ca = compress_hierarchy_field(
                &a.hierarchy,
                field,
                comp.as_ref(),
                ErrorBound::Rel(1e-3),
                &cfg,
            )
            .unwrap();
            let cb = compress_hierarchy_field(
                &b.hierarchy,
                field,
                comp.as_ref(),
                ErrorBound::Rel(1e-3),
                &cfg,
            )
            .unwrap();
            assert_eq!(
                ca.to_bytes(),
                cb.to_bytes(),
                "{app:?}/{}: non-deterministic stream",
                kind.label()
            );
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = Scenario::new(Application::Nyx, Scale::Tiny, 1).build();
    let b = Scenario::new(Application::Nyx, Scale::Tiny, 2).build();
    assert_ne!(a.uniform.data, b.uniform.data);
}

#[test]
fn extraction_is_deterministic() {
    let built = Scenario::new(Application::Warpx, Scale::Tiny, 77).build();
    let field = built.spec.eval_field();
    let levels = &built.hierarchy.field(field).unwrap().levels;
    let m1 = extract_amr_isosurface(&built.hierarchy, levels, built.iso, IsoMethod::Resampling);
    let m2 = extract_amr_isosurface(&built.hierarchy, levels, built.iso, IsoMethod::Resampling);
    assert_eq!(m1.combined(), m2.combined());
}

#[test]
fn serialized_hierarchy_stream_roundtrip() {
    let built = Scenario::new(Application::Warpx, Scale::Tiny, 31).build();
    let comp = CompressorKind::SzLr.instance();
    let cfg = AmrCodecConfig::default();
    let c = compress_hierarchy_field(
        &built.hierarchy,
        "Ez",
        comp.as_ref(),
        ErrorBound::Rel(1e-3),
        &cfg,
    )
    .unwrap();
    let bytes = c.to_bytes();
    let back = amrviz_compress::amr_codec::CompressedHierarchyField::from_bytes(&bytes).unwrap();
    assert_eq!(back.to_bytes(), bytes);
}
