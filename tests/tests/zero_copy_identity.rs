//! Bit-identity proofs for the zero-copy hot path.
//!
//! The `_into` decode entry points and the scratch-pooled encoders must be
//! *observably indistinguishable* from the owned APIs: same bytes out of
//! the encoders, same bits out of the decoders — regardless of what a
//! reused buffer held before, and regardless of the worker-pool size.

use std::fmt::Write as _;

use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, decompress_hierarchy_field_into,
    AmrCodecConfig, Compressor, DecodeBudget, DecodePolicy, ErrorBound, Field3, SzInterp, SzLr,
    ZfpLike,
};
use amrviz_core::prelude::*;
use amrviz_integration_tests::{fnv1a, mesh_fingerprint, nyx_like, warpx_like};
use amrviz_viz::extract_amr_isosurface;

fn compressors() -> Vec<(&'static str, Box<dyn Compressor>)> {
    vec![
        ("szlr", Box::new(SzLr::default())),
        ("szinterp", Box::new(SzInterp)),
        ("zfp-like", Box::new(ZfpLike)),
    ]
}

fn test_field(dims: [usize; 3], phase: f64) -> Field3 {
    Field3::from_fn(dims, |i, j, k| {
        (i as f64 * 0.37 + phase).sin() * (j as f64 * 0.23).cos() + 0.02 * k as f64
    })
}

fn assert_bits_eq(a: &[f64], b: &[f64], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: bit mismatch at {i}");
    }
}

#[test]
fn compress_into_appends_exactly_the_owned_bytes() {
    let field = test_field([11, 9, 7], 0.0);
    for (name, c) in compressors() {
        let owned = c.compress(&field, ErrorBound::Rel(1e-3));
        // Appending after a nonempty prefix must neither disturb the prefix
        // nor change the emitted stream.
        let mut out = b"prefix".to_vec();
        c.compress_into(field.view(), ErrorBound::Rel(1e-3), &mut out);
        assert_eq!(&out[..6], b"prefix", "{name}: prefix clobbered");
        assert_eq!(&out[6..], &owned[..], "{name}: appended stream differs");
    }
}

#[test]
fn decompress_into_dirty_buffer_is_bit_identical() {
    let budget = DecodeBudget::default();
    let fields = [test_field([11, 9, 7], 0.0), test_field([5, 13, 6], 1.7)];
    for (name, c) in compressors() {
        // One reused buffer, pre-poisoned with NaNs and oversized — every
        // decode must fully overwrite it to exactly the fresh result.
        let mut reused = vec![f64::NAN; 10_000];
        for (fi, field) in fields.iter().enumerate() {
            let stream = c.compress(field, ErrorBound::Rel(1e-3));
            let fresh = c.decompress(&stream).unwrap();
            let dims = c.decompress_into(&stream, &budget, &mut reused).unwrap();
            assert_eq!(dims, fresh.dims, "{name}/{fi}: dims differ");
            assert_bits_eq(&reused, &fresh.data, &format!("{name}/{fi}"));
        }
    }
}

#[test]
fn hierarchy_decode_into_reused_levels_is_bit_identical() {
    let budget = DecodeBudget::default();
    let cfg = AmrCodecConfig::default();
    let nyx = nyx_like(42);
    let warpx = warpx_like(42);

    let scenarios = [(&nyx, SzLr::default()), (&warpx, SzLr::default())];
    let mut levels = Vec::new();
    // Alternate between the two hierarchies so each decode lands on fab
    // storage shaped (and dirtied) by the *other* scenario, then decode the
    // same stream again so it lands on its own previous output.
    for round in 0..2 {
        for (built, comp) in &scenarios {
            let field = built.spec.eval_field();
            let compressed = compress_hierarchy_field(
                &built.hierarchy,
                field,
                comp,
                ErrorBound::Rel(1e-3),
                &cfg,
            )
            .unwrap();
            let fresh =
                decompress_hierarchy_field(&built.hierarchy, &compressed, comp, &cfg).unwrap();
            let report = decompress_hierarchy_field_into(
                &built.hierarchy,
                &compressed,
                comp,
                &cfg,
                DecodePolicy::Strict,
                &budget,
                &mut levels,
            )
            .unwrap();
            assert!(report.is_clean(), "round {round}: strict decode not clean");
            assert_eq!(levels.len(), fresh.len(), "round {round}: level count");
            for (lev, (a, b)) in levels.iter().zip(&fresh).enumerate() {
                assert_eq!(a.fabs().len(), b.fabs().len());
                for (fi, (fa, fb)) in a.fabs().iter().zip(b.fabs()).enumerate() {
                    assert_bits_eq(
                        fa.data(),
                        fb.data(),
                        &format!("round {round} level {lev} fab {fi}"),
                    );
                }
            }
        }
    }
}

#[test]
fn streams_and_meshes_identical_across_thread_counts() {
    let prior = amrviz_par::threads();
    let built = nyx_like(42);
    let field = built.spec.eval_field();
    let cfg = AmrCodecConfig::default();
    let budget = DecodeBudget::default();

    let mut signatures = Vec::new();
    for threads in [1usize, 4] {
        amrviz_par::set_threads(threads);
        let mut sig = String::new();
        for kind in CompressorKind::PAPER {
            let comp = kind.instance();
            let compressed = compress_hierarchy_field(
                &built.hierarchy,
                field,
                comp.as_ref(),
                ErrorBound::Rel(1e-3),
                &cfg,
            )
            .unwrap();
            let bytes = compressed.to_bytes();
            writeln!(
                sig,
                "{} stream_fnv={:016x} len={}",
                kind.label(),
                fnv1a(&bytes),
                bytes.len()
            )
            .unwrap();
            let mut levels = Vec::new();
            decompress_hierarchy_field_into(
                &built.hierarchy,
                &compressed,
                comp.as_ref(),
                &cfg,
                DecodePolicy::Strict,
                &budget,
                &mut levels,
            )
            .unwrap();
            let mesh = extract_amr_isosurface(
                &built.hierarchy,
                &levels,
                built.iso,
                IsoMethod::DualCellRedundant,
            )
            .into_combined();
            writeln!(
                sig,
                "{} mesh_fnv={:016x}",
                kind.label(),
                mesh_fingerprint(&mesh)
            )
            .unwrap();
        }
        signatures.push(sig);
    }
    amrviz_par::set_threads(prior);
    assert_eq!(
        signatures[0], signatures[1],
        "outputs changed with worker-pool size — zero-copy path is not deterministic"
    );
}
