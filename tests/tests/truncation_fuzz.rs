//! Truncation-at-every-prefix property tests.
//!
//! For every codec in the workspace: encode a random input, then decode
//! **every** byte prefix of the valid stream, from empty to full length.
//! The contract is simply "no panic" — each prefix must come back as a
//! graceful `Err` or (for prefixes that happen to be self-delimiting) a
//! valid `Ok`. A panic anywhere fails the test harness, which is exactly
//! the assertion. Decoding runs under `DecodeBudget::strict()` so inflated
//! length prefixes exposed by truncation can't demand absurd allocations
//! either.

use amrviz_codec::{
    huffman_decode_budgeted, huffman_encode, lzss_compress, lzss_decompress_budgeted, read_uvarint,
    rle_decode_zeros_budgeted, rle_encode_zeros, write_uvarint, BitReader, BitWriter, DecodeBudget,
};
use amrviz_compress::{
    compress_hierarchy_field, AmrCodecConfig, CompressedHierarchyField, ErrorBound, SzLr,
};
use amrviz_integration_tests::nyx_like;
use amrviz_rng::{check, Rng};

fn random_symbols(rng: &mut Rng, max_len: usize, max_sym: u64) -> Vec<u32> {
    let n = rng.range_usize(1, max_len.max(2));
    (0..n).map(|_| rng.below(max_sym) as u32).collect()
}

#[test]
fn varint_survives_truncation_at_every_prefix() {
    check(0xA1, 16, |rng| {
        let mut stream = Vec::new();
        let n = rng.range_usize(1, 40);
        for _ in 0..n {
            write_uvarint(&mut stream, rng.next_u64() >> rng.below(64));
        }
        for cut in 0..=stream.len() {
            let prefix = &stream[..cut];
            let mut pos = 0;
            while pos < prefix.len() {
                if read_uvarint(prefix, &mut pos).is_err() {
                    break;
                }
            }
        }
    });
}

#[test]
fn bitio_survives_truncation_at_every_prefix() {
    check(0xA2, 16, |rng| {
        let mut w = BitWriter::new();
        let n = rng.range_usize(1, 300);
        for _ in 0..n {
            w.write_bits(rng.next_u64(), 1 + rng.below(32) as u32);
        }
        let stream = w.finish();
        for cut in 0..=stream.len() {
            let mut r = BitReader::new(&stream[..cut]);
            while r.read_bits(11).is_ok() {}
        }
    });
}

#[test]
fn huffman_survives_truncation_at_every_prefix() {
    let budget = DecodeBudget::strict();
    check(0xA3, 12, |rng| {
        // Skewed distribution → multi-length canonical code table.
        let syms: Vec<u32> = random_symbols(rng, 400, 50)
            .into_iter()
            .map(|s| if s > 40 { s } else { s % 5 })
            .collect();
        let stream = huffman_encode(&syms);
        for cut in 0..=stream.len() {
            match huffman_decode_budgeted(&stream[..cut], &budget) {
                Ok(decoded) if cut == stream.len() => assert_eq!(decoded, syms),
                _ => {}
            }
        }
    });
}

#[test]
fn rle_survives_truncation_at_every_prefix() {
    let budget = DecodeBudget::strict();
    check(0xA4, 12, |rng| {
        let mut values = vec![0u32; rng.range_usize(1, 500)];
        for v in values.iter_mut() {
            if rng.chance(0.15) {
                *v = rng.below(1000) as u32;
            }
        }
        let stream = rle_encode_zeros(&values);
        for cut in 0..=stream.len() {
            match rle_decode_zeros_budgeted(&stream[..cut], &budget) {
                Ok(decoded) if cut == stream.len() => assert_eq!(decoded, values),
                _ => {}
            }
        }
    });
}

#[test]
fn lzss_survives_truncation_at_every_prefix() {
    let budget = DecodeBudget::strict();
    check(0xA5, 12, |rng| {
        // Repetitive input so the stream contains real back-references.
        let n = rng.range_usize(1, 600);
        let data: Vec<u8> = (0..n)
            .map(|i| ((i / 7) % 31) as u8 ^ rng.below(4) as u8)
            .collect();
        let stream = lzss_compress(&data);
        for cut in 0..=stream.len() {
            match lzss_decompress_budgeted(&stream[..cut], &budget) {
                Ok(decoded) if cut == stream.len() => assert_eq!(decoded, data),
                _ => {}
            }
        }
    });
}

#[test]
fn container_survives_truncation_at_every_prefix() {
    let built = nyx_like(5);
    let field = built.spec.eval_field();
    let cfg = AmrCodecConfig {
        skip_redundant: true,
        restore_redundant: true,
    };
    let compressed = compress_hierarchy_field(
        &built.hierarchy,
        field,
        &SzLr::default(),
        ErrorBound::Rel(1e-3),
        &cfg,
    )
    .expect("tiny scenario compresses");
    let stream = compressed.to_bytes();
    let budget = DecodeBudget::strict();
    let mut prefix_oks = 0;
    for cut in 0..=stream.len() {
        if CompressedHierarchyField::from_bytes_budgeted(&stream[..cut], &budget).is_ok() {
            prefix_oks += 1;
        }
    }
    // Only the complete stream parses: every v2 container ends with a
    // trailing-bytes check and a final blob section, so proper prefixes
    // must all fail structurally.
    assert_eq!(
        prefix_oks, 1,
        "a proper prefix of a v2 container parsed as valid"
    );
    assert!(
        CompressedHierarchyField::from_bytes_budgeted(&stream, &budget).is_ok(),
        "the full stream must still parse"
    );
}
