//! The error-bound contract, checked across every compressor, both
//! applications, and adversarial fields.

#![allow(clippy::needless_range_loop)] // level-indexed loops mirror the math

use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, AmrCodecConfig, Compressor, ErrorBound,
    Field3, SzInterp, SzLr, ZfpLike,
};
use amrviz_core::prelude::*;
use amrviz_rng::check;

fn compressors() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(SzLr::default()),
        Box::new(SzInterp),
        Box::new(ZfpLike),
    ]
}

#[test]
fn bound_holds_on_scenarios_for_all_compressors() {
    for app in Application::ALL {
        let built = Scenario::new(app, Scale::Tiny, 17).build();
        let field = app.eval_field();
        for comp in compressors() {
            for rel in [1e-4, 1e-2] {
                let cfg = AmrCodecConfig::default();
                let compressed = compress_hierarchy_field(
                    &built.hierarchy,
                    field,
                    comp.as_ref(),
                    ErrorBound::Rel(rel),
                    &cfg,
                )
                .unwrap();
                let levels =
                    decompress_hierarchy_field(&built.hierarchy, &compressed, comp.as_ref(), &cfg)
                        .unwrap();
                for lev in 0..built.hierarchy.num_levels() {
                    let orig = built.hierarchy.field_level(field, lev).unwrap();
                    for (ofab, dfab) in orig.fabs().iter().zip(levels[lev].fabs()) {
                        for (o, d) in ofab.data().iter().zip(dfab.data()) {
                            assert!(
                                (o - d).abs() <= compressed.abs_eb * (1.0 + 1e-12),
                                "{} on {app:?} lev {lev}: |{o} - {d}| > {}",
                                comp.name(),
                                compressed.abs_eb
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn adversarial_fields_respect_bound() {
    // Constants, ramps, alternating extremes, subnormals, huge magnitudes.
    let cases: Vec<(&str, Field3)> = vec![
        ("constant", Field3::new([6, 6, 6], vec![1.0; 216])),
        (
            "alternating",
            Field3::from_fn(
                [7, 5, 3],
                |i, j, k| if (i + j + k) % 2 == 0 { 1e8 } else { -1e8 },
            ),
        ),
        (
            "tiny_values",
            Field3::from_fn([5, 5, 5], |i, _, _| 1e-300 * (i as f64 + 1.0)),
        ),
        (
            "huge_values",
            Field3::from_fn([5, 5, 5], |i, j, k| {
                1e250 * ((i + 2 * j + 3 * k) as f64).sin()
            }),
        ),
        (
            "single_spike",
            Field3::from_fn(
                [9, 9, 9],
                |i, j, k| {
                    if (i, j, k) == (4, 4, 4) {
                        1e9
                    } else {
                        0.0
                    }
                },
            ),
        ),
    ];
    for (name, field) in &cases {
        let range = field.range();
        for comp in compressors() {
            for bound in [
                ErrorBound::Rel(1e-3),
                ErrorBound::Abs(1e-2 * range.max(1e-9)),
            ] {
                let abs = bound.to_abs(range).max(1e-300);
                let blob = comp.compress(field, bound);
                let back = comp
                    .decompress(&blob)
                    .unwrap_or_else(|e| panic!("{} failed to decode {name}: {e}", comp.name()));
                for (o, d) in field.data.iter().zip(&back.data) {
                    assert!(
                        (o - d).abs() <= abs * (1.0 + 1e-12),
                        "{} on {name}: |{o} - {d}| > {abs}",
                        comp.name()
                    );
                }
            }
        }
    }
}

#[test]
fn random_fields_respect_bound_every_compressor() {
    check(0xEB0, 12, |rng| {
        let nx = rng.range_usize(1, 9);
        let ny = rng.range_usize(1, 9);
        let nz = rng.range_usize(1, 9);
        let mut field_rng = rng.fork(1);
        let field = Field3::from_fn([nx, ny, nz], |_, _, _| field_rng.range_f64(-1e4, 1e4));
        let abs = 0.5;
        for comp in compressors() {
            let blob = comp.compress(&field, ErrorBound::Abs(abs));
            let back = comp.decompress(&blob).unwrap();
            for (o, d) in field.data.iter().zip(&back.data) {
                assert!((o - d).abs() <= abs * (1.0 + 1e-12));
            }
        }
    });
}
