//! End-to-end pipeline: generate → store → reload → compress → decompress →
//! visualize → evaluate, for both applications.

#![allow(clippy::needless_range_loop)] // level-indexed loops mirror the math

use amrviz_amr::plotfile::{read_plotfile, write_plotfile};
use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, AmrCodecConfig, ErrorBound,
};
use amrviz_core::experiment::{run_compression, CompressorKind};
use amrviz_core::prelude::*;
use amrviz_metrics::quality;
use amrviz_viz::extract_amr_isosurface;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("amrviz_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

#[test]
fn full_pipeline_both_apps() {
    for app in Application::ALL {
        let built = Scenario::new(app, Scale::Tiny, 9).build();
        let field = app.eval_field();

        // Store and reload the snapshot; data must survive bit-exactly.
        let dir = tmpdir(app.label());
        write_plotfile(&dir, &built.hierarchy).unwrap();
        let reloaded = read_plotfile(&dir).unwrap();
        for lev in 0..built.hierarchy.num_levels() {
            assert_eq!(
                built.hierarchy.field_level(field, lev).unwrap(),
                reloaded.field_level(field, lev).unwrap(),
                "{app:?} level {lev} changed across plotfile round-trip"
            );
        }
        std::fs::remove_dir_all(&dir).ok();

        // Compress the *reloaded* hierarchy, decompress, and check quality.
        let comp = CompressorKind::SzInterp.instance();
        let cfg = AmrCodecConfig::default();
        let compressed =
            compress_hierarchy_field(&reloaded, field, comp.as_ref(), ErrorBound::Rel(1e-3), &cfg)
                .unwrap();
        assert!(compressed.compressed_bytes() < compressed.n_values * 8 / 3);
        let levels =
            decompress_hierarchy_field(&reloaded, &compressed, comp.as_ref(), &cfg).unwrap();

        // Pointwise bound on every level.
        for lev in 0..reloaded.num_levels() {
            let orig = reloaded.field_level(field, lev).unwrap();
            for (ofab, dfab) in orig.fabs().iter().zip(levels[lev].fabs()) {
                for (o, d) in ofab.data().iter().zip(dfab.data()) {
                    assert!((o - d).abs() <= compressed.abs_eb * (1.0 + 1e-12));
                }
            }
        }

        // The decompressed data still yields surfaces with every method.
        for method in IsoMethod::ALL {
            let res = extract_amr_isosurface(&reloaded, &levels, built.iso, method);
            assert!(
                res.total_triangles() > 0,
                "{app:?}/{method:?}: empty surface from decompressed data"
            );
        }
    }
}

#[test]
fn quality_metrics_track_error_bound() {
    let built = Scenario::new(Application::Warpx, Scale::Tiny, 3).build();
    let mut last_psnr = f64::INFINITY;
    let mut last_cr = 0.0;
    for eb in [1e-4, 1e-3, 1e-2] {
        let run = run_compression(&built, CompressorKind::SzLr, eb).unwrap();
        assert!(run.psnr_db < last_psnr, "PSNR must fall as eb grows");
        assert!(run.compression_ratio > last_cr, "CR must grow with eb");
        last_psnr = run.psnr_db;
        last_cr = run.compression_ratio;
    }
}

#[test]
fn flattened_reconstruction_matches_pointwise_quality() {
    // The uniform-resolution merge used for Table 2 metrics must itself
    // honor the bound (merging only rearranges values).
    let built = Scenario::new(Application::Nyx, Scale::Tiny, 5).build();
    let comp = CompressorKind::SzLr.instance();
    let cfg = AmrCodecConfig::default();
    let compressed = compress_hierarchy_field(
        &built.hierarchy,
        "baryon_density",
        comp.as_ref(),
        ErrorBound::Rel(1e-3),
        &cfg,
    )
    .unwrap();
    let levels =
        decompress_hierarchy_field(&built.hierarchy, &compressed, comp.as_ref(), &cfg).unwrap();
    let ur = amrviz_amr::resample::flatten_levels_to_finest(
        &built.hierarchy,
        &levels,
        amrviz_amr::resample::Upsample::PiecewiseConstant,
    )
    .unwrap();
    let q = quality(&built.uniform.data, &ur.data);
    assert!(q.max_abs_err <= compressed.abs_eb * (1.0 + 1e-12));
    assert!(q.psnr > 40.0);
}
