//! Golden fingerprints for the pinned recipe subset (the 6 scenarios the
//! `enumerated-smoke` CI job runs): generated-field bytes, one compressed
//! stream, and one extracted surface per scenario. Pins the whole
//! recipe → spec → hierarchy → codec → viz chain; re-bless intended
//! changes with `BLESS=1 cargo test -p amrviz-integration-tests recipe_golden`.

use std::fmt::Write as _;

use amrviz_compress::{compress_hierarchy_field, AmrCodecConfig, ErrorBound, SzLr};
use amrviz_core::prelude::*;
use amrviz_integration_tests::{assert_golden, fnv1a, mesh_fingerprint};
use amrviz_recipe::{expand, PINNED_SUBSET};
use amrviz_viz::extract_amr_isosurface;

/// CI's `enumerated-smoke` job feeds `tests/golden/pinned_subset.recipe`
/// to `repro --suite`; it must expand to the same specs as the in-crate
/// `PINNED_SUBSET` constant the goldens below pin.
#[test]
fn pinned_subset_recipe_file_matches_the_constant() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/golden/pinned_subset.recipe"
    ))
    .expect("tests/golden/pinned_subset.recipe exists");
    let from_file = expand(&src, 42).expect("recipe file expands");
    let from_const = expand(PINNED_SUBSET, 42).expect("constant expands");
    assert_eq!(from_file.specs, from_const.specs);
}

#[test]
fn recipe_golden_pinned_subset() {
    let exp = expand(PINNED_SUBSET, 42).expect("pinned subset expands");
    assert_eq!(exp.specs.len(), 6);
    let mut out = String::new();
    for spec in exp.specs {
        let built = BuiltScenario::from_spec(spec.clone());
        let field = spec.eval_field();

        // Field-data fingerprint: every fab's raw bits, in level order.
        let mut bytes = Vec::new();
        for lev in 0..built.hierarchy.num_levels() {
            let mf = built.hierarchy.field_level(field, lev).unwrap();
            for fab in mf.fabs() {
                for v in fab.data() {
                    bytes.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
        }

        let c = compress_hierarchy_field(
            &built.hierarchy,
            field,
            &SzLr::default(),
            ErrorBound::Rel(1e-3),
            &AmrCodecConfig::default(),
        )
        .expect("pinned scenario compresses");
        let stream = c.to_bytes();

        let levels = &built.hierarchy.field(field).unwrap().levels;
        let res =
            extract_amr_isosurface(&built.hierarchy, levels, built.iso, IsoMethod::Resampling);

        writeln!(
            out,
            "{} seed={} field_fnv={:016x} stream_bytes={} stream_fnv={:016x} \
             triangles={} mesh_fnv={:016x}",
            spec.label(),
            spec.seed,
            fnv1a(&bytes),
            stream.len(),
            fnv1a(&stream),
            res.total_triangles(),
            mesh_fingerprint(&res.into_combined()),
        )
        .unwrap();
    }
    assert_golden("recipe_pinned_subset.txt", &out);
}
