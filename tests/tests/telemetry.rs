//! Continuous-telemetry integration: trace trees are structurally
//! invariant under the worker-pool width, journal files parse line by line
//! with `amrviz-json` and stitch back into the same trees, head sampling
//! keeps whole traces, and windowed snapshots age out while lifetime
//! totals survive.

use std::collections::BTreeMap;
use std::sync::Mutex;

use amrviz_json::Json;

/// The obs recorder is process-global; tests in this binary serialize.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A small fan-out workload: `roots` sequential root spans, each running 8
/// parallel tasks through the worker pool, each task recording one `work`
/// span (stitched into the submitting root's trace by `amrviz_par`).
fn fan_out_workload(roots: usize) {
    for r in 0..roots {
        let _root = amrviz_obs::span!("job", index = r);
        let partials = amrviz_par::run(8, |i| {
            let sp = amrviz_obs::span!("work", task = i);
            let mut acc = 0u64;
            for k in 0..2_000u64 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(k ^ i as u64);
            }
            sp.finish();
            acc
        });
        std::hint::black_box(partials);
    }
}

/// Canonical, id-free shape of every recorded trace: for each trace, the
/// sorted multiset of root-to-span name paths; traces themselves sorted.
/// Two runs of the same workload produce equal shapes at any pool width.
fn trace_shapes(events: &[amrviz_obs::SpanEvent]) -> Vec<Vec<String>> {
    let by_id: BTreeMap<u64, &amrviz_obs::SpanEvent> = events.iter().map(|e| (e.id, e)).collect();
    let mut per_trace: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for e in events {
        let mut path = vec![e.name.to_string()];
        let mut cur = e.parent;
        while cur != 0 {
            let Some(p) = by_id.get(&cur) else { break };
            path.push(p.name.to_string());
            cur = p.parent;
        }
        path.reverse();
        per_trace
            .entry(e.trace_id)
            .or_default()
            .push(path.join("/"));
    }
    let mut shapes: Vec<Vec<String>> = per_trace
        .into_values()
        .map(|mut v| {
            v.sort();
            v
        })
        .collect();
    shapes.sort();
    shapes
}

fn record_workload(threads: usize, roots: usize) -> Vec<amrviz_obs::SpanEvent> {
    let prior = amrviz_par::threads();
    amrviz_par::set_threads(threads);
    amrviz_obs::reset();
    amrviz_obs::enable();
    fan_out_workload(roots);
    amrviz_obs::disable();
    let events = amrviz_obs::events_snapshot();
    amrviz_obs::reset();
    amrviz_par::set_threads(prior);
    events
}

#[test]
fn trace_trees_are_invariant_under_pool_width() {
    let _g = lock();
    let one = record_workload(1, 3);
    let four = record_workload(4, 3);

    let s1 = trace_shapes(&one);
    let s4 = trace_shapes(&four);
    assert_eq!(s1.len(), 3, "3 roots -> 3 traces: {s1:?}");
    assert_eq!(
        s1, s4,
        "the same workload must produce structurally identical trace trees \
         at 1 and 4 threads"
    );
    // Each trace holds the root plus its 8 pool tasks, every task stitched
    // *under* the root (path job/work), not floating as its own root.
    for shape in &s1 {
        assert_eq!(shape.len(), 9, "job + 8 work spans: {shape:?}");
        assert_eq!(shape.iter().filter(|p| *p == "job").count(), 1);
        assert_eq!(shape.iter().filter(|p| *p == "job/work").count(), 8);
    }
    // Worker spans must carry the submitting root's trace even though they
    // ran on pool threads.
    for e in four.iter() {
        assert_ne!(e.trace_id, 0, "span {} lost its trace", e.name);
    }
}

#[test]
fn journal_roundtrips_span_trees_through_jsonl() {
    let _g = lock();
    let dir = std::env::temp_dir().join(format!("amrviz_telemetry_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&path);

    let prior = amrviz_par::threads();
    amrviz_par::set_threads(4);
    amrviz_obs::reset();
    amrviz_obs::enable();
    amrviz_obs::journal::start(&path).unwrap();
    fan_out_workload(2);
    let stats = amrviz_obs::journal::stop();
    amrviz_obs::disable();
    amrviz_obs::reset();
    amrviz_par::set_threads(prior);

    assert_eq!(stats.dropped, 0, "tiny workload must not overflow shards");
    let text = std::fs::read_to_string(&path).unwrap();

    // Every line parses (the CI well-formedness contract) and span lines
    // stitch into trees: each trace has exactly one parentless root and
    // every child's parent id exists within the same trace.
    let mut spans: BTreeMap<String, Vec<(u64, u64, String)>> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("line {}: {e}: {line}", i + 1));
        let kind = v.get("kind").and_then(Json::as_str).expect("kind");
        if kind != "span" {
            continue;
        }
        let trace = v
            .get("trace")
            .and_then(Json::as_str)
            .expect("trace")
            .to_string();
        assert_eq!(trace.len(), 16, "trace ids are 16-hex strings: {trace}");
        spans.entry(trace).or_default().push((
            v.get("span").and_then(Json::as_u64).expect("span id"),
            v.get("parent").and_then(Json::as_u64).expect("parent id"),
            v.get("name")
                .and_then(Json::as_str)
                .expect("name")
                .to_string(),
        ));
    }
    assert_eq!(spans.len(), 2, "2 roots -> 2 traces in the journal");
    for (trace, list) in &spans {
        assert_eq!(list.len(), 9, "trace {trace}: job + 8 work spans");
        let ids: std::collections::BTreeSet<u64> = list.iter().map(|s| s.0).collect();
        let roots: Vec<_> = list.iter().filter(|s| s.1 == 0).collect();
        assert_eq!(roots.len(), 1, "trace {trace}: exactly one root");
        assert_eq!(roots[0].2, "job");
        for (id, parent, name) in list {
            if *parent != 0 {
                assert!(
                    ids.contains(parent),
                    "trace {trace}: span {id} ({name}) has dangling parent {parent}"
                );
            }
        }
    }
    // Bracketing meta lines are present.
    assert!(text.lines().next().unwrap().contains("journal_start"));
    assert!(text.lines().last().unwrap().contains("journal_stop"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn head_sampling_keeps_or_drops_whole_traces() {
    let _g = lock();
    let prior = amrviz_par::threads();
    amrviz_par::set_threads(4);
    amrviz_obs::reset();
    amrviz_obs::enable();
    amrviz_obs::set_trace_sampling(2);
    fan_out_workload(4);
    amrviz_obs::set_trace_sampling(1);
    amrviz_obs::disable();
    let events = amrviz_obs::events_snapshot();
    amrviz_obs::reset();
    amrviz_par::set_threads(prior);

    let shapes = trace_shapes(&events);
    assert_eq!(shapes.len(), 2, "1-in-2 sampling keeps 2 of 4 traces");
    // No torn traces: a kept trace has its full tree, a dropped one nothing.
    for shape in &shapes {
        assert_eq!(shape.len(), 9, "kept trace must be complete: {shape:?}");
    }
}

#[test]
fn windowed_counters_age_out_but_lifetime_survives() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    // 50 ms slots x 4 -> 200 ms coverage; generous sleeps below keep this
    // robust on slow CI machines.
    amrviz_obs::window::set_window(0.05, 4);
    amrviz_obs::counter_add("telemetry.test_hits", 5);
    let fresh = amrviz_obs::counters_window_snapshot(10.0);
    assert_eq!(fresh.get("telemetry.test_hits"), Some(&5));

    std::thread::sleep(std::time::Duration::from_millis(400));
    let aged = amrviz_obs::counters_window_snapshot(10.0);
    assert_eq!(
        aged.get("telemetry.test_hits"),
        None,
        "window total must age out after coverage elapses"
    );
    let lifetime = amrviz_obs::counters_snapshot();
    assert_eq!(
        lifetime.get("telemetry.test_hits"),
        Some(&5),
        "lifetime total must survive rotation"
    );
    amrviz_obs::window::set_window(5.0, 12);
    amrviz_obs::disable();
    amrviz_obs::reset();
}
