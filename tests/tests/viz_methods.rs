//! Cross-crate invariants of the visualization methods on real scenario
//! data — the structural claims of the paper's Figs. 1, 5–8.

#![allow(clippy::needless_range_loop)] // level-indexed loops mirror the math

use amrviz_core::experiment::run_crack_analysis;
use amrviz_core::prelude::*;
use amrviz_viz::{extract_amr_isosurface, normal_roughness, surface_distance};

#[test]
fn crack_gap_ordering_matches_fig1() {
    for app in Application::ALL {
        let built = Scenario::new(app, Scale::Tiny, 21).build();
        let rows = run_crack_analysis(&built);
        let by = |m: &str| rows.iter().find(|r| r.method == m).unwrap();
        let crack = by("re-sampling");
        let gap = by("dual-cell");
        let fixed = by("dual-cell+redundant");
        // Fig. 1: re-sampling cracks are smaller than dual-cell gaps…
        assert!(
            gap.mean_gap > crack.mean_gap,
            "{app:?}: dual gap {} !> crack {}",
            gap.mean_gap,
            crack.mean_gap
        );
        // …and the redundant coarse data shrinks the gap. The shrink factor
        // is dramatic for WarpX's single clean slab interface; Nyx's
        // fragmented blocky refinement leaves more residual rim, so the
        // required factor is looser there.
        let factor = match app {
            Application::Warpx => 0.5,
            Application::Nyx => 0.8,
        };
        assert!(
            fixed.mean_gap < factor * gap.mean_gap,
            "{app:?}: redundant fix {} !< {factor}·{}",
            fixed.mean_gap,
            gap.mean_gap
        );
        // Every method must produce triangles on both levels.
        assert!(crack.coarse_triangles > 0 && crack.fine_triangles > 0);
    }
}

#[test]
fn methods_agree_on_surface_location_for_original_data() {
    // §4.3: on original (uncompressed) data the re-sampling and dual-cell
    // surfaces are visually similar (the resolution advantage is ~(n+1)/n).
    // Quantitatively: their mutual distance is a fraction of a fine cell.
    let built = Scenario::new(Application::Warpx, Scale::Tiny, 4).build();
    let field = built.spec.eval_field();
    let levels = &built.hierarchy.field(field).unwrap().levels;
    let a = extract_amr_isosurface(&built.hierarchy, levels, built.iso, IsoMethod::Resampling);
    let b = extract_amr_isosurface(&built.hierarchy, levels, built.iso, IsoMethod::DualCell);
    let d = surface_distance(&b.into_combined(), &a.into_combined()).unwrap();
    let fine_h = built.hierarchy.geometry().cell_size_at(2)[0];
    assert!(
        d.mean < 1.5 * fine_h,
        "methods disagree on original data: mean {} vs fine cell {}",
        d.mean,
        fine_h
    );
}

#[test]
fn per_level_meshes_are_watertight_away_from_boundaries() {
    // Within one level the tetrahedral extraction is watertight; open edges
    // only appear at level interfaces and domain boundaries. Check the
    // single-level case has *no* open edges at all for an interior surface.
    let built = Scenario::new(Application::Nyx, Scale::Tiny, 8).build();
    let field = built.spec.eval_field();
    let levels = &built.hierarchy.field(field).unwrap().levels;
    let res = extract_amr_isosurface(&built.hierarchy, levels, built.iso, IsoMethod::Resampling);
    // Total open-boundary length must be small relative to total edge
    // length: cracks are a 1D defect on a 2D surface.
    let combined = res.into_combined();
    let area = combined.total_area();
    let rim = combined.boundary_length();
    assert!(
        rim * built.hierarchy.geometry().cell_size_at(2)[0] < area,
        "rim length {rim} too large for surface area {area}"
    );
}

#[test]
fn roughness_is_finite_and_comparable_across_methods() {
    let built = Scenario::new(Application::Warpx, Scale::Tiny, 2).build();
    let field = built.spec.eval_field();
    let levels = &built.hierarchy.field(field).unwrap().levels;
    for method in IsoMethod::ALL {
        let res = extract_amr_isosurface(&built.hierarchy, levels, built.iso, method);
        let r = normal_roughness(&res.into_combined());
        assert!(
            r.is_finite() && (0.0..1.5).contains(&r),
            "{method:?}: roughness {r}"
        );
    }
}
