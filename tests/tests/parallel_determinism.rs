//! The tentpole guarantee: the full compress → decompress → extract →
//! score pipeline produces **bit-identical** results at any thread count.
//!
//! Each scenario runs the whole pipeline at 1, 2, and 8 threads and
//! compares every artifact — compressed byte streams, decompressed field
//! bits, mesh buffers, PSNR/SSIM bits — against the single-threaded
//! baseline.

#![allow(clippy::needless_range_loop)] // level-indexed loops mirror the math

use std::sync::Mutex;

use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, AmrCodecConfig, ErrorBound,
};
use amrviz_core::experiment::CompressorKind;
use amrviz_core::prelude::*;
use amrviz_integration_tests::{nyx_like, warpx_like};
use amrviz_metrics::{quality, ssim3, SsimConfig};
use amrviz_viz::extract_amr_isosurface;

/// `amrviz_par::set_threads` is process-global, so tests that sweep it must
/// not interleave.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Every pipeline artifact, reduced to exactly comparable (bit-level) form.
#[derive(Debug, PartialEq, Eq)]
struct PipelineArtifacts {
    /// Scenario field data (generation itself runs on the pool).
    field_bits: Vec<u64>,
    /// Serialized compressed stream per compressor.
    compressed: Vec<(&'static str, Vec<u8>)>,
    /// Decompressed per-level data bits per compressor.
    decompressed_bits: Vec<(&'static str, Vec<u64>)>,
    /// Canonical mesh buffers per method: vertex coordinate bits + indices.
    meshes: Vec<(&'static str, Vec<u64>, Vec<u32>)>,
    /// PSNR and SSIM of the first compressor's reconstruction, as bits.
    psnr_bits: u64,
    ssim_bits: u64,
}

fn run_pipeline(built: &BuiltScenario) -> PipelineArtifacts {
    let field = built.spec.eval_field();
    let cfg = AmrCodecConfig::default();

    let mut field_bits = Vec::new();
    for lev in 0..built.hierarchy.num_levels() {
        for fab in built.hierarchy.field_level(field, lev).unwrap().fabs() {
            field_bits.extend(fab.data().iter().map(|v| v.to_bits()));
        }
    }

    let mut compressed = Vec::new();
    let mut decompressed_bits = Vec::new();
    let mut first_recon: Option<Vec<amrviz_amr::MultiFab>> = None;
    for kind in CompressorKind::PAPER {
        let comp = kind.instance();
        let c = compress_hierarchy_field(
            &built.hierarchy,
            field,
            comp.as_ref(),
            ErrorBound::Rel(1e-3),
            &cfg,
        )
        .unwrap();
        let levels = decompress_hierarchy_field(&built.hierarchy, &c, comp.as_ref(), &cfg).unwrap();
        let mut bits = Vec::new();
        for mf in &levels {
            for fab in mf.fabs() {
                bits.extend(fab.data().iter().map(|v| v.to_bits()));
            }
        }
        compressed.push((kind.label(), c.to_bytes()));
        decompressed_bits.push((kind.label(), bits));
        first_recon.get_or_insert(levels);
    }

    let orig_levels = &built.hierarchy.field(field).unwrap().levels;
    let mut meshes = Vec::new();
    for method in IsoMethod::ALL {
        let mesh = extract_amr_isosurface(&built.hierarchy, orig_levels, built.iso, method)
            .into_combined();
        let vbits: Vec<u64> = mesh
            .vertices
            .iter()
            .flat_map(|v| v.iter().map(|c| c.to_bits()))
            .collect();
        let idx: Vec<u32> = mesh.triangles.iter().flatten().copied().collect();
        meshes.push((method.label(), vbits, idx));
    }

    // Score the first compressor's reconstruction on the uniform merge.
    let recon = first_recon.unwrap();
    let recon_uniform = amrviz_amr::resample::flatten_levels_to_finest(
        &built.hierarchy,
        &recon,
        amrviz_amr::resample::Upsample::PiecewiseConstant,
    )
    .unwrap()
    .data;
    let q = quality(&built.uniform.data, &recon_uniform);
    let s = ssim3(
        &built.uniform.data,
        &recon_uniform,
        built.uniform.dims(),
        &SsimConfig::default(),
    );

    PipelineArtifacts {
        field_bits,
        compressed,
        decompressed_bits,
        meshes,
        psnr_bits: q.psnr.to_bits(),
        ssim_bits: s.to_bits(),
    }
}

fn assert_thread_invariant(build: impl Fn() -> BuiltScenario, label: &str) {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = amrviz_par::threads();

    amrviz_par::set_threads(1);
    let baseline = run_pipeline(&build());
    assert!(!baseline.field_bits.is_empty());
    assert!(baseline.meshes.iter().all(|(_, v, _)| !v.is_empty()));

    for n in [2, 8] {
        amrviz_par::set_threads(n);
        let got = run_pipeline(&build());
        assert_eq!(
            got, baseline,
            "{label}: pipeline artifacts diverged at {n} threads"
        );
    }
    amrviz_par::set_threads(prev);
}

#[test]
fn nyx_pipeline_is_bit_identical_at_1_2_8_threads() {
    assert_thread_invariant(|| nyx_like(42), "Nyx");
}

#[test]
fn warpx_pipeline_is_bit_identical_at_1_2_8_threads() {
    assert_thread_invariant(|| warpx_like(42), "WarpX");
}

/// Value-based histograms (sizes, hit rates — anything not measuring wall
/// time) must aggregate to the exact same distribution at any thread
/// count: the sharded recorders merge bucket-wise with commutative integer
/// sums, and the recorded values themselves are bit-deterministic.
const VALUE_HISTOGRAMS: [&str; 2] = ["compress.blob_bytes", "quantizer.hit_pct"];

/// `(name, count, sum, min, max, nonzero buckets)` for each value-based
/// histogram recorded during one instrumented pipeline run.
type HistFingerprint = Vec<(String, u64, u64, u64, u64, Vec<(u64, u64, u64)>)>;

fn instrumented_hist_fingerprint(built: &BuiltScenario) -> HistFingerprint {
    amrviz_obs::reset();
    amrviz_obs::enable();
    let _ = run_pipeline(built);
    amrviz_obs::disable();
    let hists = amrviz_obs::histograms_snapshot();
    amrviz_obs::reset();
    VALUE_HISTOGRAMS
        .iter()
        .filter_map(|&name| {
            hists.get(name).map(|h| {
                (
                    name.to_string(),
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max(),
                    h.nonzero_buckets(),
                )
            })
        })
        .collect()
}

#[test]
fn value_histograms_are_bit_identical_across_thread_counts() {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = amrviz_par::threads();
    let built = warpx_like(42);

    amrviz_par::set_threads(1);
    let baseline = instrumented_hist_fingerprint(&built);
    assert_eq!(
        baseline.len(),
        VALUE_HISTOGRAMS.len(),
        "pipeline must record every value-based histogram: {baseline:?}"
    );
    for (name, count, ..) in &baseline {
        assert!(*count > 0, "{name} recorded nothing");
    }

    for n in [2, 8] {
        amrviz_par::set_threads(n);
        let got = instrumented_hist_fingerprint(&built);
        assert_eq!(
            got, baseline,
            "value-based histograms diverged at {n} threads"
        );
    }
    amrviz_par::set_threads(prev);
}

#[test]
fn thread_count_resolution_order() {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = amrviz_par::threads();
    // An explicit override wins over everything and is clamped to >= 1.
    amrviz_par::set_threads(3);
    assert_eq!(amrviz_par::threads(), 3);
    amrviz_par::set_threads(prev);
}
