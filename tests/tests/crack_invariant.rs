//! Crack/gap invariants at the level interface (the paper's Fig. 1
//! taxonomy), checked through `amrviz_viz::crack` and its obs counter:
//! re-sampling leaves genuine cracks (a nonzero rim with a nonzero gap),
//! plain dual cells leave a ~cell-wide gap, and dual cells + redundant
//! coarse data close the gap to (near) zero.

use amrviz_core::prelude::*;
use amrviz_integration_tests::warpx_like;
use amrviz_viz::{extract_amr_isosurface, interface_gap, CrackMetrics};

fn gap_for(built: &BuiltScenario, method: IsoMethod) -> CrackMetrics {
    let field = built.spec.eval_field();
    let levels = &built.hierarchy.field(field).unwrap().levels;
    let geom = built.hierarchy.geometry();
    let res = extract_amr_isosurface(&built.hierarchy, levels, built.iso, method);
    interface_gap(
        &res.level_meshes[1],
        &res.level_meshes[0],
        geom.prob_lo,
        geom.prob_hi,
        1e-9,
    )
    .expect("coarse mesh nonempty")
}

/// One fine cell in physical units — the natural yardstick for gap sizes.
fn fine_cell(built: &BuiltScenario) -> f64 {
    let h = &built.hierarchy;
    h.geometry()
        .cell_size_at(h.ratio_to_level0(h.num_levels() - 1))[0]
}

#[test]
fn resampling_has_cracks_dual_has_gaps_redundant_closes_them() {
    let built = warpx_like(42);
    let cell = fine_cell(&built);

    let crack = gap_for(&built, IsoMethod::Resampling);
    let gap = gap_for(&built, IsoMethod::DualCell);
    let fixed = gap_for(&built, IsoMethod::DualCellRedundant);

    // Re-sampling: the fine surface has an open rim at the interface and
    // the mismatch is real but sub-cell ("cracks").
    assert!(crack.n_rim_edges > 0, "re-sampling should leave a rim");
    assert!(crack.mean_gap > 0.0, "cracks have nonzero width");

    // Plain dual cells: a visible gap on the order of the cell size —
    // strictly worse than the cracks.
    assert!(gap.n_rim_edges > 0);
    assert!(
        gap.mean_gap > crack.mean_gap,
        "dual gap {} should exceed re-sampling crack {}",
        gap.mean_gap,
        crack.mean_gap
    );
    assert!(
        gap.mean_gap > 0.25 * cell,
        "dual gap {} should be on the cell scale ({cell})",
        gap.mean_gap
    );

    // Redundant coarse data: the gap collapses to (near) zero — under a
    // fine cell and a small fraction of the plain-dual gap.
    assert!(
        fixed.mean_gap < 0.5 * gap.mean_gap,
        "redundant data should close the gap: {} vs {}",
        fixed.mean_gap,
        gap.mean_gap
    );
    assert!(
        fixed.mean_gap < cell,
        "residual gap {} should be sub-cell ({cell})",
        fixed.mean_gap
    );
}

#[test]
fn rim_edge_counter_matches_reported_metrics() {
    let built = warpx_like(42);
    amrviz_obs::reset();
    amrviz_obs::enable();
    let m = gap_for(&built, IsoMethod::Resampling);
    amrviz_obs::disable();
    let counters = amrviz_obs::counters_snapshot();
    assert_eq!(
        counters.get("viz.crack_rim_edges").copied(),
        Some(m.n_rim_edges as u64),
        "obs counter must agree with CrackMetrics"
    );
}

#[test]
fn watertight_single_level_reports_zero_everywhere() {
    // A mesh measured against itself has no interface defects at all; this
    // pins the metric's zero so the positive assertions above mean
    // something.
    let built = warpx_like(42);
    let field = built.spec.eval_field();
    let levels = &built.hierarchy.field(field).unwrap().levels;
    let geom = built.hierarchy.geometry();
    let res = extract_amr_isosurface(
        &built.hierarchy,
        levels,
        built.iso,
        IsoMethod::DualCellRedundant,
    );
    let m = interface_gap(
        &res.level_meshes[0],
        &res.level_meshes[0],
        geom.prob_lo,
        geom.prob_hi,
        1e-9,
    )
    .expect("nonempty");
    // Every rim midpoint lies on the mesh itself, so its distance is zero
    // up to point-in-triangle roundoff.
    assert!(m.max_gap < 1e-9, "self-distance {} not ~0", m.max_gap);
}
