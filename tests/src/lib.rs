//! Integration-test host crate (tests live in `tests/tests/`) plus shared
//! helpers: an FNV-1a hasher, mesh canonicalization/fingerprinting, the
//! golden-snapshot harness (`BLESS=1` regenerates), and scenario builders.

use std::path::PathBuf;

use amrviz_core::prelude::*;
use amrviz_viz::TriMesh;

/// 64-bit FNV-1a over a byte stream. Dependency-free, stable across
/// platforms — the fingerprint that golden snapshots store.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Quantizes one coordinate to a lattice fine enough that any real change
/// moves it, while `-0.0`/`+0.0` and representation noise collapse.
fn quantize(v: f64) -> i64 {
    let q = (v * 1e9).round();
    if q == 0.0 {
        0
    } else {
        q as i64
    }
}

/// Canonical form of a mesh: each triangle as its three *positions*
/// (quantized), the triangle list sorted. Invariant to vertex indexing and
/// triangle emission order, so fingerprints survive harmless refactors of
/// the extraction code while pinning the actual geometry.
pub fn canonical_triangles(mesh: &TriMesh) -> Vec<[[i64; 3]; 3]> {
    let mut tris: Vec<[[i64; 3]; 3]> = mesh
        .triangles
        .iter()
        .map(|t| {
            let mut corners = [[0i64; 3]; 3];
            for (c, &vi) in t.iter().enumerate() {
                let v = mesh.vertices[vi as usize];
                corners[c] = [quantize(v[0]), quantize(v[1]), quantize(v[2])];
            }
            // Rotate so the lexicographically smallest corner leads (winding
            // preserved).
            let lead = (0..3).min_by_key(|&i| corners[i]).unwrap();
            [
                corners[lead],
                corners[(lead + 1) % 3],
                corners[(lead + 2) % 3],
            ]
        })
        .collect();
    tris.sort_unstable();
    tris
}

/// FNV-1a fingerprint of the canonicalized mesh.
pub fn mesh_fingerprint(mesh: &TriMesh) -> u64 {
    let mut bytes = Vec::with_capacity(mesh.triangles.len() * 72);
    for tri in canonical_triangles(mesh) {
        for corner in tri {
            for c in corner {
                bytes.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    fnv1a(&bytes)
}

/// Where golden snapshots live (`tests/golden/`), anchored to the crate so
/// the tests work from any working directory.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// Compares `actual` against `golden/<name>`; with `BLESS=1` in the
/// environment it (re)writes the snapshot instead and passes.
pub fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var("BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual.trim_end(),
        expected.trim_end(),
        "snapshot {} drifted; if the change is intended, re-bless with BLESS=1",
        name
    );
}

/// The Nyx-like evaluation scenario at test scale (irregular, spiky
/// density field).
pub fn nyx_like(seed: u64) -> BuiltScenario {
    Scenario::new(Application::Nyx, Scale::Tiny, seed).build()
}

/// The WarpX-like evaluation scenario at test scale (smooth EM field).
pub fn warpx_like(seed: u64) -> BuiltScenario {
    Scenario::new(Application::Warpx, Scale::Tiny, seed).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_is_invariant_to_triangle_and_vertex_order() {
        let mesh = TriMesh {
            vertices: vec![
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ],
            triangles: vec![[0, 1, 2], [1, 3, 2]],
        };
        // Same geometry: triangles reordered, vertex list permuted, each
        // triangle rotated (winding preserved).
        let shuffled = TriMesh {
            vertices: vec![
                [0.0, 0.0, 1.0],
                [0.0, 1.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 0.0, 0.0],
            ],
            triangles: vec![[1, 2, 0], [2, 1, 3]],
        };
        assert_eq!(mesh_fingerprint(&mesh), mesh_fingerprint(&shuffled));
        // Flipping a winding changes the surface and must change the hash.
        let flipped = TriMesh {
            triangles: vec![[0, 2, 1], [1, 3, 2]],
            ..mesh.clone()
        };
        assert_ne!(mesh_fingerprint(&mesh), mesh_fingerprint(&flipped));
    }
}
