//! Nyx pipeline: crack analysis, compression comparison, and the
//! redundant-data ablation on the irregular cosmology dataset.
//!
//! ```text
//! cargo run --release -p amrviz-examples --bin nyx_pipeline [-- scale]
//! ```

use amrviz_compress::{compress_hierarchy_field, AmrCodecConfig, ErrorBound};
use amrviz_core::experiment::{run_crack_analysis, run_rate_distortion, CompressorKind};
use amrviz_core::prelude::*;
use amrviz_core::report;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Small);
    println!("building Nyx scenario at {scale:?} scale…");
    let built = Scenario::new(Application::Nyx, scale, 42).build();
    println!(
        "  fine level covers {:.1}% of the domain (paper: 40.7%)",
        built.hierarchy.level_density(1) * 100.0
    );

    // Fig. 1 on Nyx data: cracks vs gaps vs redundant-data fix.
    println!("\ncrack/gap structure of the original data:");
    let cracks = run_crack_analysis(&built);
    println!("{}", report::format_cracks(&cracks));

    // Fig. 13: rate-distortion on the irregular density field. The paper's
    // finding: unlike on WarpX, SZ-Interp does *not* dominate here, and
    // SZ-L/R wins R-SSIM at large bounds.
    println!("rate-distortion (Fig. 13):");
    let pts = run_rate_distortion(&built, &[1e-4, 1e-3, 1e-2, 3e-2]).expect("rate-distortion runs");
    println!("{}", report::format_rate_distortion(&pts));

    // §2.2 ablation: omit the redundant coarse data during compression.
    println!("redundant coarse data ablation (rel eb 1e-3):");
    let mut rows = Vec::new();
    for kind in CompressorKind::PAPER {
        let comp = kind.instance();
        for (label, cfg) in [
            ("keep", AmrCodecConfig::default()),
            (
                "skip",
                AmrCodecConfig {
                    skip_redundant: true,
                    restore_redundant: false,
                },
            ),
        ] {
            let c = compress_hierarchy_field(
                &built.hierarchy,
                "baryon_density",
                comp.as_ref(),
                ErrorBound::Rel(1e-3),
                &cfg,
            )
            .expect("field exists");
            rows.push(vec![
                kind.label().to_string(),
                label.to_string(),
                format!("{}", c.compressed_bytes()),
                format!(
                    "{:.2}",
                    (c.n_values * 8) as f64 / c.compressed_bytes() as f64
                ),
            ]);
        }
    }
    println!(
        "{}",
        report::ascii_table(&["Compressor", "Redundant", "Bytes", "CR (f64)"], &rows)
    );
}
