//! Quickstart: generate Nyx-like AMR data, compress it, measure quality,
//! extract an isosurface, and export mesh + rendering.
//!
//! ```text
//! cargo run --release -p amrviz-examples --bin quickstart
//! ```

use std::path::Path;

use amrviz_core::experiment::{run_compression, standard_camera, CompressorKind};
use amrviz_core::prelude::*;
use amrviz_render::{render_mesh, RenderOptions};
use amrviz_viz::{extract_amr_isosurface, obj};

fn main() {
    // 1. Generate a small Nyx-like cosmology snapshot (two AMR levels,
    //    spiky log-normal density, ~40% refined).
    let scenario = Scenario::new(Application::Nyx, Scale::Small, 7);
    println!(
        "generating {} at {:?} scale…",
        scenario.app.label(),
        scenario.scale
    );
    let built = scenario.build();
    let h = &built.hierarchy;
    println!(
        "  {} levels; level domains: {:?} and {:?}; fine coverage {:.1}%",
        h.num_levels(),
        h.level_domain(0).size(),
        h.level_domain(1).size(),
        h.level_density(1) * 100.0
    );

    // 2. Compress with SZ-Interp at a relative error bound of 1e-3 and
    //    report the paper's quality metrics.
    let run = run_compression(&built, CompressorKind::SzInterp, 1e-3).expect("compression runs");
    println!(
        "  {}: CR(f64) {:.1}x  CR(f32-equiv) {:.1}x  PSNR {:.1} dB  R-SSIM {:.2e}",
        run.compressor, run.compression_ratio, run.compression_ratio_f32, run.psnr_db, run.rssim
    );
    println!(
        "  error bound held: max |err| = {:.3e} ≤ {:.3e}",
        run.max_abs_error, run.abs_error_bound
    );

    // 3. Extract the over-density isosurface with the basic re-sampling
    //    method and save it.
    let field = built.spec.eval_field();
    let levels = &h.field(field).expect("field exists").levels;
    let res = extract_amr_isosurface(h, levels, built.iso, IsoMethod::Resampling);
    println!(
        "  isosurface at {:.2}: {} triangles ({} coarse, {} fine)",
        built.iso,
        res.total_triangles(),
        res.level_meshes[0].num_triangles(),
        res.level_meshes[1].num_triangles()
    );
    let mesh = res.into_combined();

    let mesh_path = Path::new("quickstart_isosurface.obj");
    obj::save_obj(mesh_path, &mesh).expect("write OBJ");
    println!("  wrote {}", mesh_path.display());

    let img = render_mesh(
        &mesh,
        &standard_camera(&built),
        &RenderOptions {
            width: 800,
            height: 600,
            ..Default::default()
        },
    );
    let img_path = Path::new("quickstart_isosurface.png");
    img.save_png(img_path).expect("write PNG");
    println!("  wrote {}", img_path.display());
}
