//! Live AMR simulation: advects a blob across the domain while the mesh
//! refinement follows it (the paper's Fig. 2, as a running application
//! instead of a static snapshot). Writes slice renderings with the fine
//! boxes outlined, plus plotfiles you can reload.
//!
//! ```text
//! cargo run --release -p amrviz-examples --bin amr_simulation
//! ```

use std::path::PathBuf;

use amrviz_amr::plotfile::{read_plotfile, write_plotfile};
use amrviz_render::{render_slice, SliceOptions};
use amrviz_sim::solver::{AmrAdvection, FIELD};

fn main() {
    let out = PathBuf::from("amr_simulation_out");
    std::fs::create_dir_all(&out).expect("create output dir");

    let mut sim = AmrAdvection::new(48, [1.0, 0.4, 0.0], 0.02, |p| {
        let r2 = (p[0] - 0.22).powi(2) + (p[1] - 0.3).powi(2) + (p[2] - 0.5).powi(2);
        (-r2 / (2.0 * 0.07f64.powi(2))).exp()
    });

    println!("step    time   fine-boxes  fine-cells");
    for snap in 0..4 {
        if snap > 0 {
            sim.run(10);
        }
        let h = sim.hierarchy();
        println!(
            "{:>4}  {:>6.4}  {:>10}  {:>10}",
            h.step,
            sim.time(),
            h.box_array(1).len(),
            h.box_array(1).num_cells()
        );

        // Slice rendering with fine-box outlines (Fig. 2 analogue).
        let img = render_slice(h, FIELD, &SliceOptions::default()).expect("field exists");
        let img_path = out.join(format!("slice_step{:03}.png", h.step));
        img.save_png(&img_path).expect("write PNG");

        // Plotfile snapshot.
        let pf_path = out.join(format!("plt{:05}", h.step));
        write_plotfile(&pf_path, h).expect("write plotfile");
        println!(
            "      wrote {} and {}",
            img_path.display(),
            pf_path.display()
        );
    }

    // Demonstrate the plotfile round-trip.
    let last = sim.hierarchy().step;
    let reread = read_plotfile(&out.join(format!("plt{last:05}"))).expect("read plotfile");
    assert_eq!(reread.num_levels(), 2);
    assert_eq!(reread.step, last);
    let orig_mf = sim.hierarchy().field_level(FIELD, 0).expect("field");
    let read_mf = reread.field_level(FIELD, 0).expect("field");
    assert_eq!(orig_mf, read_mf, "plotfile round-trip must be bit-exact");
    println!("plotfile round-trip verified (step {last}, bit-exact).");
}
