//! WarpX pipeline: the paper's Figs. 9/10 workflow end-to-end.
//!
//! Generates the WarpX-like laser-wakefield snapshot, compresses `Ez` with
//! both SZ algorithms across error bounds, extracts isosurfaces with the
//! basic (re-sampling) and advanced (dual-cell + redundant data) methods,
//! quantifies how much each method amplifies compression artifacts, and
//! renders side-by-side images.
//!
//! ```text
//! cargo run --release -p amrviz-examples --bin warpx_pipeline [-- scale]
//! ```

use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, AmrCodecConfig, ErrorBound,
};
use amrviz_core::experiment::{run_viz_quality, standard_camera, CompressorKind};
use amrviz_core::prelude::*;
use amrviz_core::report;
use amrviz_render::{raster::render_meshes, Color, RenderOptions};
use amrviz_viz::extract_amr_isosurface;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Small);
    println!("building WarpX scenario at {scale:?} scale…");
    let built = Scenario::new(Application::Warpx, scale, 42).build();
    println!(
        "  fine level covers {:.1}% of the domain (paper: 8.6%)",
        built.hierarchy.level_density(1) * 100.0
    );

    // Quantified Figs. 9 & 10: how far does the decompressed-data surface
    // drift from the original-data surface under each method?
    let mut rows = Vec::new();
    for kind in CompressorKind::PAPER {
        rows.extend(
            run_viz_quality(
                &built,
                kind,
                &[1e-4, 1e-3, 1e-2],
                &[IsoMethod::Resampling, IsoMethod::DualCellRedundant],
            )
            .expect("viz-quality runs"),
        );
    }
    println!("{}", report::format_viz_quality(&rows));
    println!(
        "expected shape (paper §4.1): dual-cell rows show larger surface error,\n\
         larger roughness increase and larger image R-SSIM than re-sampling rows,\n\
         and the gap grows with the error bound."
    );

    // Render the eb = 1e-2 SZ-L/R panels (the paper's Fig. 9c vs 9f).
    let comp = CompressorKind::SzLr.instance();
    let cfg = AmrCodecConfig::default();
    let compressed = compress_hierarchy_field(
        &built.hierarchy,
        "Ez",
        comp.as_ref(),
        ErrorBound::Rel(1e-2),
        &cfg,
    )
    .expect("field exists");
    let levels = decompress_hierarchy_field(&built.hierarchy, &compressed, comp.as_ref(), &cfg)
        .expect("own stream decodes");
    let cam = standard_camera(&built);
    let opts = RenderOptions {
        width: 960,
        height: 720,
        ..Default::default()
    };
    for (method, name) in [
        (IsoMethod::Resampling, "warpx_szlr_1e-2_resampling.png"),
        (IsoMethod::DualCellRedundant, "warpx_szlr_1e-2_dualcell.png"),
    ] {
        let res = extract_amr_isosurface(&built.hierarchy, &levels, built.iso, method);
        let img = render_meshes(
            &[
                (&res.level_meshes[0], Color::new(205, 205, 210)),
                (&res.level_meshes[1], Color::new(235, 120, 90)),
            ],
            &cam,
            &opts,
        );
        img.save_png(std::path::Path::new(name)).expect("write PNG");
        println!("wrote {name}");
    }
}
