//! The paper's Fig. 14 in one dimension: why re-sampling (cell→vertex
//! interpolation) softens blocky decompression artifacts while the
//! dual-cell method passes them through untouched.
//!
//! ```text
//! cargo run --release -p amrviz-examples --bin fig14_1d
//! ```

use amrviz_compress::quantizer::{Quantized, Quantizer};

/// Second-difference roughness — how "steppy" a series looks.
fn roughness(series: &[f64]) -> f64 {
    series
        .windows(3)
        .map(|w| (w[2] - 2.0 * w[1] + w[0]).abs())
        .sum()
}

fn main() {
    let n = 24;
    let original: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();

    // Blocky "decompression": quantize with a coarse bound and no
    // prediction — the 1D stand-in for SZ-L/R's block-wise artifacts
    // (the paper's "111//444//777" sketch).
    let q = Quantizer::new(0.9);
    let blocky: Vec<f64> = original
        .iter()
        .map(|&v| match q.quantize(0.0, v) {
            Quantized::Code { recon, .. } => recon,
            Quantized::Outlier => v,
        })
        .collect();

    // Dual-cell visualization consumes the decompressed cell values as-is.
    let dual = blocky.clone();

    // Re-sampling first interpolates cells to vertices (paper §2.3): in 1D
    // each interior vertex averages its two neighboring cells, which is
    // exactly the interpolation of the paper's Fig. 14 ("2.5" and "5.5"
    // mitigating the block steps).
    let mut resampled = Vec::with_capacity(n + 1);
    resampled.push(blocky[0]);
    for i in 1..n {
        resampled.push(0.5 * (blocky[i - 1] + blocky[i]));
    }
    resampled.push(blocky[n - 1]);

    let fmt = |s: &[f64]| {
        s.iter()
            .map(|v| format!("{v:4.1}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("original:           {}", fmt(&original));
    println!("decompressed:       {}", fmt(&blocky));
    println!("dual-cell sees:     {}", fmt(&dual));
    println!("re-sampling sees:   {}", fmt(&resampled));
    println!();
    println!(
        "step roughness — original: {:.2}, dual-cell: {:.2}, re-sampling: {:.2}",
        roughness(&original),
        roughness(&dual),
        roughness(&resampled)
    );
    assert!(roughness(&resampled) < roughness(&dual));
    println!(
        "\nre-sampling halves the visible steps: this is why the basic method\n\
         hides compression artifacts that the advanced dual-cell method exposes\n\
         (paper §4.3)."
    );
}
